#include "channel/multipath.h"

#include <cmath>

#include "dsp/rng.h"

namespace rjf::channel {

MultipathChannel::MultipathChannel(const MultipathProfile& profile,
                                   std::uint64_t seed) {
  dsp::Xoshiro256 rng(seed);
  const auto spacing_samples = static_cast<std::size_t>(std::llround(
      profile.tap_spacing_s * profile.sample_rate_hz));
  const std::size_t span =
      1 + (profile.num_taps > 0 ? (profile.num_taps - 1) : 0) *
              std::max<std::size_t>(spacing_samples, 1);
  taps_.assign(span, dsp::cfloat{});

  double total = 0.0;
  for (std::size_t t = 0; t < profile.num_taps; ++t) {
    const double power =
        std::pow(10.0, -profile.decay_db_per_tap * static_cast<double>(t) / 10.0);
    const dsp::cfloat tap = rng.complex_gaussian(power);
    taps_[t * std::max<std::size_t>(spacing_samples, 1)] = tap;
    total += std::norm(tap);
  }
  // Normalise the tap ENSEMBLE power to 1 in expectation: scale by the
  // profile's nominal power rather than the realisation's, so fading
  // survives the normalisation.
  double nominal = 0.0;
  for (std::size_t t = 0; t < profile.num_taps; ++t)
    nominal += std::pow(10.0, -profile.decay_db_per_tap *
                                  static_cast<double>(t) / 10.0);
  const auto g = static_cast<float>(1.0 / std::sqrt(std::max(nominal, 1e-12)));
  for (auto& tap : taps_) tap *= g;
  (void)total;
}

dsp::cvec MultipathChannel::apply(std::span<const dsp::cfloat> in) const {
  dsp::cvec out(in.size(), dsp::cfloat{});
  for (std::size_t d = 0; d < taps_.size(); ++d) {
    const dsp::cfloat tap = taps_[d];
    if (tap == dsp::cfloat{}) continue;
    for (std::size_t k = d; k < in.size(); ++k) out[k] += tap * in[k - d];
  }
  return out;
}

double MultipathChannel::realised_gain() const noexcept {
  double gain = 0.0;
  for (const auto tap : taps_) gain += std::norm(tap);
  return gain;
}

}  // namespace rjf::channel
