// Simple AWGN link used for the detector-characterisation experiments
// (paper §3.2: wired link with independently measured SNR at the receiver).
#pragma once

#include <cstdint>

#include "dsp/types.h"

namespace rjf::channel {

/// Scale `signal` so that signal power / noise power == snr_db given a
/// fixed noise power, add noise, return the received waveform. The signal
/// power is measured over the non-zero extent of the input.
[[nodiscard]] dsp::cvec awgn_link(std::span<const dsp::cfloat> signal,
                                  double snr_db, double noise_power,
                                  std::uint64_t seed);

/// Noise-only capture of `length` samples (the "50-ohm terminated"
/// receiver used to calibrate false alarm rates in §3.2).
[[nodiscard]] dsp::cvec terminated_input(std::size_t length, double noise_power,
                                         std::uint64_t seed);

}  // namespace rjf::channel
