// Power / SIR / SNR metering, mirroring the paper's instrumentation: SNR is
// measured independently at the receiver, and SIR at the AP is computed
// from the signal and jammer powers during the jammer's active intervals.
#pragma once

#include "dsp/types.h"

namespace rjf::channel {

/// Signal-to-interference ratio in dB given mean powers.
[[nodiscard]] double sir_db(double signal_power, double interference_power);

/// SIR at a port given TX powers and path losses (dB) of each arm.
[[nodiscard]] double sir_at_port_db(double signal_tx_power,
                                    double signal_path_loss_db,
                                    double jammer_tx_power,
                                    double jammer_path_loss_db);

/// Mean power over only the samples where `active` is true (e.g. the
/// jammer's burst intervals). Returns 0 when no sample is active.
[[nodiscard]] double active_power(std::span<const dsp::cfloat> x,
                                  std::span<const bool> active);

}  // namespace rjf::channel
