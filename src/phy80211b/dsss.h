// 802.11b DSSS/CCK transmitter and receiver (long-preamble PPDU format).
//
// Frame: SYNC (128 scrambled ones) | SFD (0xF3A0) | PLCP header (SIGNAL,
// SERVICE, LENGTH, CRC-16) at 1 Mb/s DBPSK/Barker, then the PSDU at the
// selected rate: 1 Mb/s DBPSK, 2 Mb/s DQPSK (both Barker-spread at
// 11 Mchip/s) or 5.5/11 Mb/s CCK. The whole PPDU passes through the
// self-synchronising scrambler.
//
// Deviation from the standard, documented in DESIGN.md: the 16-bit LENGTH
// field carries the PSDU byte count directly instead of microseconds (the
// microsecond encoding needs the SERVICE length-extension bit to be
// unambiguous at 11 Mb/s and adds nothing to the jamming experiments).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "dsp/types.h"
#include "phy80211b/barker.h"

namespace rjf::phy80211b {

enum class DsssRate : std::uint8_t {
  kMbps1 = 0x0A,   // SIGNAL field value = rate in 100 kb/s units
  kMbps2 = 0x14,
  kMbps5_5 = 0x37,
  kMbps11 = 0x6E,
};

[[nodiscard]] double dsss_rate_mbps(DsssRate rate) noexcept;

inline constexpr std::size_t kSyncBits = 128;
inline constexpr std::uint16_t kSfd = 0xF3A0;

/// Chips in the PLCP preamble + header (144 + 48 symbols x 11 chips).
inline constexpr std::size_t kPlcpChips = (kSyncBits + 16 + 48) * kBarkerLength;

class DsssTransmitter {
 public:
  explicit DsssTransmitter(DsssRate rate = DsssRate::kMbps11) noexcept
      : rate_(rate) {}

  /// Build the full PPDU waveform at 11 Mchip/s (one sample per chip),
  /// unit chip power.
  [[nodiscard]] dsp::cvec transmit(std::span<const std::uint8_t> psdu) const;

  void set_rate(DsssRate rate) noexcept { rate_ = rate; }
  [[nodiscard]] DsssRate rate() const noexcept { return rate_; }

 private:
  DsssRate rate_;
};

struct DsssRxResult {
  bool sfd_found = false;
  bool header_valid = false;  // PLCP CRC-16 passed
  std::optional<DsssRate> rate;
  std::vector<std::uint8_t> psdu;
};

class DsssReceiver {
 public:
  /// Decode a chip-aligned capture whose preamble nominally starts at
  /// `capture[0]` (the MAC/simulation provides coarse alignment, as with
  /// the OFDM receiver). Whole-symbol capture offsets are tolerated within
  /// the SFD search window: up to 9 extra symbols prepended before the
  /// SYNC, or up to 7 SYNC symbols missing — the PSDU position follows the
  /// SFD actually found, not the nominal PLCP length.
  [[nodiscard]] DsssRxResult receive(std::span<const dsp::cfloat> capture) const;
};

/// DQPSK-modulate already-scrambled bits at 2 Mb/s (Barker-spread, one
/// symbol per dibit), continuing the differential phase in `phase`. An odd
/// bit count pads the final symbol's second bit with 0 — the scenario layer
/// may feed raw bit payloads that are not byte multiples. Exposed so the
/// padding path is directly testable.
[[nodiscard]] dsp::cvec dqpsk_spread_bits(std::span<const std::uint8_t> bits,
                                          double& phase);

/// The deterministic first 2.56 us of the long preamble as the jammer's
/// 25 MSPS correlator sees it — the 802.11b detection template source.
[[nodiscard]] dsp::cvec preamble_head_chips(std::size_t num_chips = 128);

}  // namespace rjf::phy80211b
