#include "phy80211b/cck.h"

#include <cmath>
#include <numbers>

namespace rjf::phy80211b {
namespace {

constexpr double kPi = std::numbers::pi;

dsp::cfloat phasor(double phase) noexcept {
  return dsp::cfloat{static_cast<float>(std::cos(phase)),
                     static_cast<float>(std::sin(phase))};
}

double wrap(double phase) noexcept {
  while (phase >= 2.0 * kPi) phase -= 2.0 * kPi;
  while (phase < 0.0) phase += 2.0 * kPi;
  return phase;
}

// Slice a phase difference to the nearest QPSK point; returns index 0..3
// for phases {0, pi/2, pi, 3pi/2}.
unsigned slice_qpsk(double phase) noexcept {
  const double p = wrap(phase + kPi / 4.0);
  return static_cast<unsigned>(p / (kPi / 2.0)) % 4;
}

// Bit pair for QPSK index (inverse of qpsk_phase's mapping).
void bits_for_index(unsigned index, std::uint8_t& d0, std::uint8_t& d1) noexcept {
  d0 = static_cast<std::uint8_t>(index & 1u);
  d1 = static_cast<std::uint8_t>((index >> 1) & 1u);
}

}  // namespace

double qpsk_phase(unsigned d0, unsigned d1) noexcept {
  return (kPi / 2.0) * static_cast<double>((d1 << 1) | d0);
}

std::array<dsp::cfloat, kCckChips> cck_codeword(double p1, double p2,
                                                double p3, double p4) noexcept {
  return {phasor(p1 + p2 + p3 + p4), phasor(p1 + p3 + p4),
          phasor(p1 + p2 + p4),      -phasor(p1 + p4),
          phasor(p1 + p2 + p3),      phasor(p1 + p3),
          -phasor(p1 + p2),          phasor(p1)};
}

std::array<dsp::cfloat, kCckChips> cck_encode_11mbps(
    std::span<const std::uint8_t> bits8, double& phase_ref,
    bool odd_symbol) noexcept {
  const double dphi = qpsk_phase(bits8[0], bits8[1]) + (odd_symbol ? kPi : 0.0);
  const double p1 = wrap(phase_ref + dphi);
  phase_ref = p1;
  const double p2 = qpsk_phase(bits8[2], bits8[3]);
  const double p3 = qpsk_phase(bits8[4], bits8[5]);
  const double p4 = qpsk_phase(bits8[6], bits8[7]);
  return cck_codeword(p1, p2, p3, p4);
}

std::array<dsp::cfloat, kCckChips> cck_encode_5_5mbps(
    std::span<const std::uint8_t> bits4, double& phase_ref,
    bool odd_symbol) noexcept {
  const double dphi = qpsk_phase(bits4[0], bits4[1]) + (odd_symbol ? kPi : 0.0);
  const double p1 = wrap(phase_ref + dphi);
  phase_ref = p1;
  // Clause 16.4.6.5.3: p2 = d2*pi + pi/2, p3 = 0, p4 = d3*pi.
  const double p2 = bits4[2] * kPi + kPi / 2.0;
  const double p3 = 0.0;
  const double p4 = bits4[3] * kPi;
  return cck_codeword(p1, p2, p3, p4);
}

std::array<std::uint8_t, 8> cck_decode_11mbps(
    std::span<const dsp::cfloat> chips8, double& phase_ref,
    bool odd_symbol) noexcept {
  double best = -1.0;
  unsigned best_combo[3] = {0, 0, 0};
  dsp::cfloat best_corr{};
  for (unsigned i2 = 0; i2 < 4; ++i2) {
    for (unsigned i3 = 0; i3 < 4; ++i3) {
      for (unsigned i4 = 0; i4 < 4; ++i4) {
        const auto ref = cck_codeword(0.0, i2 * kPi / 2.0, i3 * kPi / 2.0,
                                      i4 * kPi / 2.0);
        dsp::cfloat corr{};
        for (std::size_t c = 0; c < kCckChips && c < chips8.size(); ++c)
          corr += chips8[c] * std::conj(ref[c]);
        const double mag = std::abs(corr);
        if (mag > best) {
          best = mag;
          best_combo[0] = i2;
          best_combo[1] = i3;
          best_combo[2] = i4;
          best_corr = corr;
        }
      }
    }
  }
  // p1 from the winning correlation's phase; d0d1 differentially. The
  // reference carries the MEASURED phase forward (like the encoder, whose
  // reference is the actual transmitted p1), not the sliced constellation
  // point: with an ideal update a residual CFO's per-symbol rotation is
  // never tracked, accumulates across the PSDU, and walks dphi over a
  // QPSK decision boundary mid-packet.
  const double p1 = wrap(std::arg(best_corr));
  const double dphi = p1 - phase_ref - (odd_symbol ? kPi : 0.0);
  const unsigned i1 = slice_qpsk(dphi);
  phase_ref = p1;

  std::array<std::uint8_t, 8> bits{};
  bits_for_index(i1, bits[0], bits[1]);
  bits_for_index(best_combo[0], bits[2], bits[3]);
  bits_for_index(best_combo[1], bits[4], bits[5]);
  bits_for_index(best_combo[2], bits[6], bits[7]);
  return bits;
}

std::array<std::uint8_t, 4> cck_decode_5_5mbps(
    std::span<const dsp::cfloat> chips8, double& phase_ref,
    bool odd_symbol) noexcept {
  double best = -1.0;
  unsigned best_combo[2] = {0, 0};
  dsp::cfloat best_corr{};
  for (unsigned d2 = 0; d2 < 2; ++d2) {
    for (unsigned d3 = 0; d3 < 2; ++d3) {
      const auto ref =
          cck_codeword(0.0, d2 * kPi + kPi / 2.0, 0.0, d3 * kPi);
      dsp::cfloat corr{};
      for (std::size_t c = 0; c < kCckChips && c < chips8.size(); ++c)
        corr += chips8[c] * std::conj(ref[c]);
      const double mag = std::abs(corr);
      if (mag > best) {
        best = mag;
        best_combo[0] = d2;
        best_combo[1] = d3;
        best_corr = corr;
      }
    }
  }
  const double p1 = wrap(std::arg(best_corr));
  const double dphi = p1 - phase_ref - (odd_symbol ? kPi : 0.0);
  const unsigned i1 = slice_qpsk(dphi);
  phase_ref = p1;  // measured-phase tracking; see cck_decode_11mbps

  std::array<std::uint8_t, 4> bits{};
  bits_for_index(i1, bits[0], bits[1]);
  bits[2] = static_cast<std::uint8_t>(best_combo[0]);
  bits[3] = static_cast<std::uint8_t>(best_combo[1]);
  return bits;
}

}  // namespace rjf::phy80211b
