#include "phy80211b/dsss.h"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "phy80211b/cck.h"

namespace rjf::phy80211b {
namespace {

constexpr double kPi = std::numbers::pi;

dsp::cfloat phasor(double phase) noexcept {
  return dsp::cfloat{static_cast<float>(std::cos(phase)),
                     static_cast<float>(std::sin(phase))};
}

// DBPSK/DQPSK differential modulator state.
struct DiffMod {
  double phase = 0.0;

  dsp::cfloat bpsk(std::uint8_t bit) noexcept {
    phase += bit ? kPi : 0.0;
    return phasor(phase);
  }
  dsp::cfloat qpsk(std::uint8_t d0, std::uint8_t d1) noexcept {
    phase += qpsk_phase(d0, d1);
    return phasor(phase);
  }
};

void append_barker_symbol(dsp::cvec& out, dsp::cfloat symbol) {
  const std::size_t at = out.size();
  out.resize(at + kBarkerLength);
  spread_symbol(symbol, std::span<dsp::cfloat>(out.data() + at, kBarkerLength));
}

std::vector<std::uint8_t> header_bits(DsssRate rate, std::size_t psdu_bytes) {
  std::vector<std::uint8_t> bits;
  bits.reserve(48);
  const auto push_byte = [&bits](std::uint8_t byte) {
    for (unsigned b = 0; b < 8; ++b) bits.push_back((byte >> b) & 1u);
  };
  push_byte(static_cast<std::uint8_t>(rate));        // SIGNAL
  push_byte(0x00);                                    // SERVICE
  push_byte(static_cast<std::uint8_t>(psdu_bytes & 0xFF));        // LENGTH lo
  push_byte(static_cast<std::uint8_t>((psdu_bytes >> 8) & 0xFF)); // LENGTH hi
  const std::uint16_t crc = plcp_crc16(bits);
  for (unsigned b = 0; b < 16; ++b)
    bits.push_back(static_cast<std::uint8_t>((crc >> b) & 1u));
  return bits;
}

std::optional<DsssRate> rate_from_signal(std::uint8_t value) noexcept {
  switch (value) {
    case 0x0A: return DsssRate::kMbps1;
    case 0x14: return DsssRate::kMbps2;
    case 0x37: return DsssRate::kMbps5_5;
    case 0x6E: return DsssRate::kMbps11;
    default: return std::nullopt;
  }
}

}  // namespace

double dsss_rate_mbps(DsssRate rate) noexcept {
  return static_cast<double>(static_cast<std::uint8_t>(rate)) / 10.0;
}

dsp::cvec DsssTransmitter::transmit(std::span<const std::uint8_t> psdu) const {
  DsssScrambler scrambler;
  DiffMod mod;
  dsp::cvec out;
  out.reserve(kPlcpChips + psdu.size() * 11);

  // SYNC: 128 scrambled ones at 1 Mb/s DBPSK.
  for (std::size_t k = 0; k < kSyncBits; ++k)
    append_barker_symbol(out, mod.bpsk(scrambler.scramble_bit(1)));
  // SFD, LSB first.
  for (unsigned b = 0; b < 16; ++b)
    append_barker_symbol(
        out, mod.bpsk(scrambler.scramble_bit((kSfd >> b) & 1u)));
  // PLCP header.
  for (const std::uint8_t bit : header_bits(rate_, psdu.size()))
    append_barker_symbol(out, mod.bpsk(scrambler.scramble_bit(bit)));

  // PSDU bits, LSB first per octet, scrambled.
  std::vector<std::uint8_t> bits;
  bits.reserve(psdu.size() * 8);
  for (const std::uint8_t byte : psdu)
    for (unsigned b = 0; b < 8; ++b)
      bits.push_back(scrambler.scramble_bit((byte >> b) & 1u));

  switch (rate_) {
    case DsssRate::kMbps1:
      for (const std::uint8_t bit : bits) append_barker_symbol(out, mod.bpsk(bit));
      break;
    case DsssRate::kMbps2: {
      const dsp::cvec symbols = dqpsk_spread_bits(bits, mod.phase);
      out.insert(out.end(), symbols.begin(), symbols.end());
      break;
    }
    case DsssRate::kMbps5_5: {
      double ref = mod.phase;
      std::size_t sym = 0;
      for (std::size_t k = 0; k + 4 <= bits.size(); k += 4, ++sym) {
        const auto chips = cck_encode_5_5mbps(
            std::span<const std::uint8_t>(bits.data() + k, 4), ref, sym % 2 == 1);
        out.insert(out.end(), chips.begin(), chips.end());
      }
      break;
    }
    case DsssRate::kMbps11: {
      double ref = mod.phase;
      std::size_t sym = 0;
      for (std::size_t k = 0; k + 8 <= bits.size(); k += 8, ++sym) {
        const auto chips = cck_encode_11mbps(
            std::span<const std::uint8_t>(bits.data() + k, 8), ref, sym % 2 == 1);
        out.insert(out.end(), chips.begin(), chips.end());
      }
      break;
    }
  }
  return out;
}

dsp::cvec dqpsk_spread_bits(std::span<const std::uint8_t> bits, double& phase) {
  dsp::cvec out;
  out.reserve((bits.size() + 1) / 2 * kBarkerLength);
  for (std::size_t k = 0; k < bits.size(); k += 2) {
    const std::uint8_t d1 = k + 1 < bits.size() ? bits[k + 1] : 0;
    phase += qpsk_phase(bits[k], d1);
    append_barker_symbol(out, phasor(phase));
  }
  return out;
}

DsssRxResult DsssReceiver::receive(std::span<const dsp::cfloat> capture) const {
  DsssRxResult result;

  // Demodulate the 1 Mb/s portion: Barker-correlate each symbol, take the
  // differential phase against the previous symbol. Demodulate past the
  // nominal PLCP length so a late SFD (extra symbols captured before the
  // SYNC) still yields a complete header: the latest SFD end the search
  // window allows is kSyncBits + 24, and the header needs 48 more bits.
  const std::size_t max_symbols = kSyncBits + 24 + 48 + 1;
  const std::size_t nsym =
      std::min(max_symbols, capture.size() / kBarkerLength);
  if (nsym < (kSyncBits - 8) + 16 + 1) return result;  // SFD can never fit

  std::vector<dsp::cfloat> corr(nsym);
  for (std::size_t s = 0; s < nsym; ++s)
    corr[s] =
        barker_correlate(capture.subspan(s * kBarkerLength, kBarkerLength));
  std::vector<std::uint8_t> raw_bits(nsym - 1);
  for (std::size_t s = 1; s < nsym; ++s)
    raw_bits[s - 1] = (corr[s] * std::conj(corr[s - 1])).real() < 0.0f ? 1 : 0;

  // Descramble (self-synchronising: state fills from received bits).
  DsssScrambler descrambler(0);
  std::vector<std::uint8_t> bits(raw_bits.size());
  for (std::size_t k = 0; k < raw_bits.size(); ++k)
    bits[k] = descrambler.descramble_bit(raw_bits[k]);

  // Locate the SFD: it should sit at symbols [127+1 .. 143+1) of the
  // differential stream (the first SYNC bit is consumed as the reference).
  // Search a small window to tolerate capture offsets.
  std::size_t sfd_end = 0;
  for (std::size_t start = kSyncBits - 8;
       start + 16 <= kSyncBits + 24 && start + 16 <= bits.size(); ++start) {
    std::uint16_t candidate = 0;
    for (unsigned b = 0; b < 16; ++b)
      candidate |= static_cast<std::uint16_t>(bits[start + b] & 1u) << b;
    if (candidate == kSfd) {
      sfd_end = start + 16;
      break;
    }
  }
  if (sfd_end == 0) return result;
  result.sfd_found = true;

  // PLCP header.
  if (bits.size() < sfd_end + 48) return result;
  const std::span<const std::uint8_t> hdr(bits.data() + sfd_end, 48);
  const std::uint16_t crc = plcp_crc16(hdr.subspan(0, 32));
  std::uint16_t rx_crc = 0;
  for (unsigned b = 0; b < 16; ++b)
    rx_crc |= static_cast<std::uint16_t>(hdr[32 + b] & 1u) << b;
  if (crc != rx_crc) return result;

  std::uint8_t signal = 0;
  for (unsigned b = 0; b < 8; ++b)
    signal |= static_cast<std::uint8_t>((hdr[b] & 1u) << b);
  const auto rate = rate_from_signal(signal);
  if (!rate) return result;
  result.header_valid = true;
  result.rate = rate;

  std::size_t psdu_bytes = 0;
  for (unsigned b = 0; b < 16; ++b)
    psdu_bytes |= static_cast<std::size_t>(hdr[16 + b] & 1u) << b;

  // PSDU decode follows the SFD actually found, not the nominal PLCP
  // length: the first data symbol sits right after the 48 header symbols,
  // and the differential reference is the last header symbol's correlation.
  const std::size_t last_plcp_symbol = sfd_end + 48;
  const std::size_t data_at = (last_plcp_symbol + 1) * kBarkerLength;
  const dsp::cfloat prev = corr[last_plcp_symbol];
  std::vector<std::uint8_t> scrambled;
  scrambled.reserve(psdu_bytes * 8);
  const std::size_t n_bits = psdu_bytes * 8;

  switch (*rate) {
    case DsssRate::kMbps1: {
      dsp::cfloat ref = prev;  // last PLCP symbol correlation
      for (std::size_t s = 0; s < n_bits; ++s) {
        const std::size_t at = data_at + s * kBarkerLength;
        if (at + kBarkerLength > capture.size()) return result;
        const dsp::cfloat cur =
            barker_correlate(capture.subspan(at, kBarkerLength));
        scrambled.push_back((cur * std::conj(ref)).real() < 0.0f ? 1 : 0);
        ref = cur;
      }
      break;
    }
    case DsssRate::kMbps2: {
      dsp::cfloat ref = prev;
      for (std::size_t s = 0; s < n_bits / 2; ++s) {
        const std::size_t at = data_at + s * kBarkerLength;
        if (at + kBarkerLength > capture.size()) return result;
        const dsp::cfloat cur =
            barker_correlate(capture.subspan(at, kBarkerLength));
        const double dphi = std::arg(cur * std::conj(ref));
        const double wrapped = dphi < -kPi / 4.0 ? dphi + 2.0 * kPi : dphi;
        const auto index =
            static_cast<unsigned>(std::lround(wrapped / (kPi / 2.0))) % 4;
        scrambled.push_back(static_cast<std::uint8_t>(index & 1u));
        scrambled.push_back(static_cast<std::uint8_t>((index >> 1) & 1u));
        ref = cur;
      }
      break;
    }
    case DsssRate::kMbps5_5: {
      double ref = std::arg(prev);
      std::size_t sym = 0;
      for (std::size_t s = 0; s < n_bits / 4; ++s, ++sym) {
        const std::size_t at = data_at + s * kCckChips;
        if (at + kCckChips > capture.size()) return result;
        const auto decoded = cck_decode_5_5mbps(capture.subspan(at, kCckChips),
                                                ref, sym % 2 == 1);
        scrambled.insert(scrambled.end(), decoded.begin(), decoded.end());
      }
      break;
    }
    case DsssRate::kMbps11: {
      double ref = std::arg(prev);
      std::size_t sym = 0;
      for (std::size_t s = 0; s < n_bits / 8; ++s, ++sym) {
        const std::size_t at = data_at + s * kCckChips;
        if (at + kCckChips > capture.size()) return result;
        const auto decoded = cck_decode_11mbps(capture.subspan(at, kCckChips),
                                               ref, sym % 2 == 1);
        scrambled.insert(scrambled.end(), decoded.begin(), decoded.end());
      }
      break;
    }
  }

  // Descramble the PSDU. The self-synchronising descrambler state is
  // exactly the last 7 raw channel bits, so re-warm a fresh instance with
  // the raw tail of the header rather than continuing `descrambler`, whose
  // single pass may have run past the header when the SFD sat early.
  DsssScrambler psdu_descrambler(0);
  for (std::size_t k = sfd_end + 41; k < sfd_end + 48; ++k)
    (void)psdu_descrambler.descramble_bit(raw_bits[k]);
  std::vector<std::uint8_t> psdu_bits(scrambled.size());
  for (std::size_t k = 0; k < scrambled.size(); ++k)
    psdu_bits[k] = psdu_descrambler.descramble_bit(scrambled[k]);

  result.psdu.assign(psdu_bytes, 0);
  for (std::size_t k = 0; k < psdu_bits.size() && k / 8 < psdu_bytes; ++k)
    result.psdu[k / 8] |= static_cast<std::uint8_t>((psdu_bits[k] & 1u) << (k % 8));
  return result;
}

dsp::cvec preamble_head_chips(std::size_t num_chips) {
  DsssScrambler scrambler;
  DiffMod mod;
  dsp::cvec out;
  out.reserve(num_chips + kBarkerLength);
  while (out.size() < num_chips)
    append_barker_symbol(out, mod.bpsk(scrambler.scramble_bit(1)));
  out.resize(num_chips);
  return out;
}

}  // namespace rjf::phy80211b
