#include "phy80211b/barker.h"

namespace rjf::phy80211b {

const std::array<float, kBarkerLength>& barker_sequence() noexcept {
  static constexpr std::array<float, kBarkerLength> kBarker = {
      +1, -1, +1, +1, -1, +1, +1, +1, -1, -1, -1};
  return kBarker;
}

void spread_symbol(dsp::cfloat symbol, std::span<dsp::cfloat> out11) noexcept {
  const auto& code = barker_sequence();
  for (std::size_t c = 0; c < kBarkerLength && c < out11.size(); ++c)
    out11[c] = symbol * code[c];
}

dsp::cfloat barker_correlate(std::span<const dsp::cfloat> chips11) noexcept {
  const auto& code = barker_sequence();
  dsp::cfloat acc{};
  for (std::size_t c = 0; c < kBarkerLength && c < chips11.size(); ++c)
    acc += chips11[c] * code[c];
  return acc;
}

std::uint8_t DsssScrambler::scramble_bit(std::uint8_t bit) noexcept {
  const std::uint8_t fb =
      static_cast<std::uint8_t>(((state_ >> 6) ^ (state_ >> 3)) & 1u);
  const std::uint8_t out = static_cast<std::uint8_t>((bit ^ fb) & 1u);
  // Self-synchronising: the transmitted (scrambled) bit enters the register.
  state_ = static_cast<std::uint8_t>(((state_ << 1) | out) & 0x7F);
  return out;
}

std::uint8_t DsssScrambler::descramble_bit(std::uint8_t bit) noexcept {
  const std::uint8_t fb =
      static_cast<std::uint8_t>(((state_ >> 6) ^ (state_ >> 3)) & 1u);
  const std::uint8_t out = static_cast<std::uint8_t>((bit ^ fb) & 1u);
  // The received (scrambled) bit enters the register -> self-sync.
  state_ = static_cast<std::uint8_t>(((state_ << 1) | bit) & 0x7F);
  return out;
}

std::uint16_t plcp_crc16(std::span<const std::uint8_t> bits) noexcept {
  // CRC-16 CCITT over bits LSB-first, preset ones, ones-complement result.
  std::uint16_t crc = 0xFFFF;
  for (const std::uint8_t bit : bits) {
    const std::uint16_t fb = ((crc >> 15) ^ bit) & 1u;
    crc = static_cast<std::uint16_t>(crc << 1);
    if (fb) crc ^= 0x1021;
  }
  return static_cast<std::uint16_t>(~crc);
}

}  // namespace rjf::phy80211b
