// Complementary Code Keying for 802.11b 5.5 and 11 Mb/s (clause 16.4.6.5).
//
// Each 8-chip CCK codeword is derived from four phases:
//   c = (e^{j(p1+p2+p3+p4)}, e^{j(p1+p3+p4)}, e^{j(p1+p2+p4)}, -e^{j(p1+p4)},
//        e^{j(p1+p2+p3)},    e^{j(p1+p3)},    -e^{j(p1+p2)},   e^{j(p1)})
// At 11 Mb/s, 8 data bits pick (p1..p4): p1 is DQPSK (differential), the
// rest are QPSK from bit pairs. At 5.5 Mb/s, 4 bits pick p1 (DQPSK) and a
// constrained (p2,p3,p4) set.
#pragma once

#include <array>
#include <cstdint>

#include "dsp/types.h"

namespace rjf::phy80211b {

inline constexpr std::size_t kCckChips = 8;

/// Build one CCK codeword from the four phases (radians).
[[nodiscard]] std::array<dsp::cfloat, kCckChips> cck_codeword(
    double p1, double p2, double p3, double p4) noexcept;

/// QPSK phase for a bit pair (d0 = LSB): 00->0, 01->pi/2, 10->pi, 11->3pi/2.
[[nodiscard]] double qpsk_phase(unsigned d0, unsigned d1) noexcept;

/// Encode 8 bits (11 Mb/s) into a codeword. `phase_ref` carries the DQPSK
/// reference for p1 and is updated; `odd_symbol` adds the extra pi rotation
/// the standard applies to odd-numbered symbols.
[[nodiscard]] std::array<dsp::cfloat, kCckChips> cck_encode_11mbps(
    std::span<const std::uint8_t> bits8, double& phase_ref, bool odd_symbol) noexcept;

/// Encode 4 bits (5.5 Mb/s).
[[nodiscard]] std::array<dsp::cfloat, kCckChips> cck_encode_5_5mbps(
    std::span<const std::uint8_t> bits4, double& phase_ref, bool odd_symbol) noexcept;

/// Maximum-likelihood decode of one received codeword (11 Mb/s): search
/// the 64 (p2,p3,p4) combinations and recover p1 differentially.
/// Returns the 8 decoded bits; updates `phase_ref` to the measured p1
/// (not the sliced constellation point) so a residual CFO is tracked
/// symbol-to-symbol instead of accumulating across the PSDU.
[[nodiscard]] std::array<std::uint8_t, 8> cck_decode_11mbps(
    std::span<const dsp::cfloat> chips8, double& phase_ref, bool odd_symbol) noexcept;

/// Decode one 5.5 Mb/s codeword (4 bits).
[[nodiscard]] std::array<std::uint8_t, 4> cck_decode_5_5mbps(
    std::span<const dsp::cfloat> chips8, double& phase_ref, bool odd_symbol) noexcept;

}  // namespace rjf::phy80211b
