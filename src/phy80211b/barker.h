// 802.11b DSSS building blocks: the 11-chip Barker sequence and the
// self-synchronising scrambler of clause 16.
//
// The paper's platform is multi-standard across "WiFi (802.11 a/b/g)";
// 802.11b is the DSSS leg: 1 and 2 Mb/s spread every symbol with the
// Barker code at 11 Mchip/s, and 5.5/11 Mb/s use CCK (cck.h).
#pragma once

#include <array>
#include <cstdint>

#include "dsp/types.h"

namespace rjf::phy80211b {

inline constexpr double kChipRateHz = 11e6;
inline constexpr std::size_t kBarkerLength = 11;

/// The 11-chip Barker sequence, +1/-1, transmit order.
[[nodiscard]] const std::array<float, kBarkerLength>& barker_sequence() noexcept;

/// Spread one symbol value (+1/-1 complex phasor) over the Barker code.
void spread_symbol(dsp::cfloat symbol, std::span<dsp::cfloat> out11) noexcept;

/// Correlate 11 chips against the Barker code (unnormalised).
[[nodiscard]] dsp::cfloat barker_correlate(std::span<const dsp::cfloat> chips11) noexcept;

/// Self-synchronising 802.11b scrambler/descrambler, polynomial
/// G(z) = z^-7 + z^-4 + 1 (clause 16.2.4). Unlike the 802.11a frame-sync
/// scrambler, this one feeds back the *output* (TX) / *input* (RX) bits,
/// so the receiver synchronises automatically after 7 bits.
class DsssScrambler {
 public:
  /// `state`: 7-bit seed; the standard uses 0x6C for the long preamble.
  explicit DsssScrambler(std::uint8_t state = 0x6C) noexcept : state_(state & 0x7F) {}

  [[nodiscard]] std::uint8_t scramble_bit(std::uint8_t bit) noexcept;
  [[nodiscard]] std::uint8_t descramble_bit(std::uint8_t bit) noexcept;

 private:
  std::uint8_t state_;
};

/// CRC-16 for the PLCP header (CCITT, preset to ones, inverted output).
[[nodiscard]] std::uint16_t plcp_crc16(std::span<const std::uint8_t> bits) noexcept;

}  // namespace rjf::phy80211b
