#include "phy80211/interleaver.h"

#include <algorithm>

namespace rjf::phy80211 {
namespace {

// Destination index of source bit k after both permutations (17-18 in the
// standard): first spreads adjacent coded bits across subcarriers, second
// alternates them between significant bit positions in the constellation.
std::size_t mapped_index(std::size_t k, unsigned n_cbps, unsigned n_bpsc) {
  const unsigned s = std::max(n_bpsc / 2, 1u);
  const std::size_t i = (n_cbps / 16) * (k % 16) + (k / 16);
  const std::size_t j =
      s * (i / s) + (i + n_cbps - (16 * i) / n_cbps) % s;
  return j;
}

}  // namespace

Bits interleave(std::span<const std::uint8_t> bits, unsigned n_cbps,
                unsigned n_bpsc) {
  Bits out(bits.size());
  for (std::size_t block = 0; block + n_cbps <= bits.size(); block += n_cbps)
    for (std::size_t k = 0; k < n_cbps; ++k)
      out[block + mapped_index(k, n_cbps, n_bpsc)] = bits[block + k];
  return out;
}

Bits deinterleave(std::span<const std::uint8_t> bits, unsigned n_cbps,
                  unsigned n_bpsc) {
  Bits out(bits.size());
  for (std::size_t block = 0; block + n_cbps <= bits.size(); block += n_cbps)
    for (std::size_t k = 0; k < n_cbps; ++k)
      out[block + k] = bits[block + mapped_index(k, n_cbps, n_bpsc)];
  return out;
}

std::vector<float> deinterleave_soft(std::span<const float> llrs,
                                     unsigned n_cbps, unsigned n_bpsc) {
  std::vector<float> out(llrs.size());
  for (std::size_t block = 0; block + n_cbps <= llrs.size(); block += n_cbps)
    for (std::size_t k = 0; k < n_cbps; ++k)
      out[block + k] = llrs[block + mapped_index(k, n_cbps, n_bpsc)];
  return out;
}

}  // namespace rjf::phy80211
