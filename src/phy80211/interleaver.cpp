#include "phy80211/interleaver.h"

#include <algorithm>

namespace rjf::phy80211 {
namespace {

// Destination index of source bit k after both permutations (17-18 in the
// standard): first spreads adjacent coded bits across subcarriers, second
// alternates them between significant bit positions in the constellation.
std::size_t mapped_index(std::size_t k, unsigned n_cbps, unsigned n_bpsc) {
  const unsigned s = std::max(n_bpsc / 2, 1u);
  const std::size_t i = (n_cbps / 16) * (k % 16) + (k / 16);
  const std::size_t j =
      s * (i / s) + (i + n_cbps - (16 * i) / n_cbps) % s;
  return j;
}

std::vector<std::uint16_t> build_table(unsigned n_cbps, unsigned n_bpsc) {
  std::vector<std::uint16_t> t(n_cbps);
  for (std::size_t k = 0; k < n_cbps; ++k)
    t[k] = static_cast<std::uint16_t>(mapped_index(k, n_cbps, n_bpsc));
  return t;
}

// The permutation depends only on (n_cbps, n_bpsc), of which 802.11a/g
// uses four combinations; precomputing them removes the division-heavy
// index math from the per-bit loops.  Non-standard parameters fall back
// to the closed form.
const std::vector<std::uint16_t>* cached_table(unsigned n_cbps,
                                               unsigned n_bpsc) {
  static const std::vector<std::uint16_t> kBpsk = build_table(48, 1);
  static const std::vector<std::uint16_t> kQpsk = build_table(96, 2);
  static const std::vector<std::uint16_t> kQam16 = build_table(192, 4);
  static const std::vector<std::uint16_t> kQam64 = build_table(288, 6);
  if (n_cbps == 48 && n_bpsc == 1) return &kBpsk;
  if (n_cbps == 96 && n_bpsc == 2) return &kQpsk;
  if (n_cbps == 192 && n_bpsc == 4) return &kQam16;
  if (n_cbps == 288 && n_bpsc == 6) return &kQam64;
  return nullptr;
}

}  // namespace

std::size_t interleaver_mapped_index(std::size_t k, unsigned n_cbps,
                                     unsigned n_bpsc) {
  return mapped_index(k, n_cbps, n_bpsc);
}

const std::uint16_t* deinterleave_scatter(unsigned n_cbps, unsigned n_bpsc) {
  // deinterleave() computes out[k] = in[map[k]]; the scatter form inverts
  // the permutation so each received bit can be stored straight to its
  // final position: scatter[map[k]] = k.
  const auto invert = [](const std::vector<std::uint16_t>& map) {
    std::vector<std::uint16_t> inv(map.size());
    for (std::size_t k = 0; k < map.size(); ++k)
      inv[map[k]] = static_cast<std::uint16_t>(k);
    return inv;
  };
  static const std::vector<std::uint16_t> kBpsk = invert(build_table(48, 1));
  static const std::vector<std::uint16_t> kQpsk = invert(build_table(96, 2));
  static const std::vector<std::uint16_t> kQam16 = invert(build_table(192, 4));
  static const std::vector<std::uint16_t> kQam64 = invert(build_table(288, 6));
  if (n_cbps == 48 && n_bpsc == 1) return kBpsk.data();
  if (n_cbps == 96 && n_bpsc == 2) return kQpsk.data();
  if (n_cbps == 192 && n_bpsc == 4) return kQam16.data();
  if (n_cbps == 288 && n_bpsc == 6) return kQam64.data();
  return nullptr;
}

Bits interleave(std::span<const std::uint8_t> bits, unsigned n_cbps,
                unsigned n_bpsc) {
  Bits out(bits.size());
  const auto* table = cached_table(n_cbps, n_bpsc);
  for (std::size_t block = 0; block + n_cbps <= bits.size(); block += n_cbps) {
    if (table) {
      for (std::size_t k = 0; k < n_cbps; ++k)
        out[block + (*table)[k]] = bits[block + k];
    } else {
      for (std::size_t k = 0; k < n_cbps; ++k)
        out[block + mapped_index(k, n_cbps, n_bpsc)] = bits[block + k];
    }
  }
  return out;
}

Bits deinterleave(std::span<const std::uint8_t> bits, unsigned n_cbps,
                  unsigned n_bpsc) {
  Bits out(bits.size());
  const auto* table = cached_table(n_cbps, n_bpsc);
  for (std::size_t block = 0; block + n_cbps <= bits.size(); block += n_cbps) {
    if (table) {
      for (std::size_t k = 0; k < n_cbps; ++k)
        out[block + k] = bits[block + (*table)[k]];
    } else {
      for (std::size_t k = 0; k < n_cbps; ++k)
        out[block + k] = bits[block + mapped_index(k, n_cbps, n_bpsc)];
    }
  }
  return out;
}

std::vector<float> deinterleave_soft(std::span<const float> llrs,
                                     unsigned n_cbps, unsigned n_bpsc) {
  std::vector<float> out(llrs.size());
  const auto* table = cached_table(n_cbps, n_bpsc);
  for (std::size_t block = 0; block + n_cbps <= llrs.size(); block += n_cbps) {
    if (table) {
      for (std::size_t k = 0; k < n_cbps; ++k)
        out[block + k] = llrs[block + (*table)[k]];
    } else {
      for (std::size_t k = 0; k < n_cbps; ++k)
        out[block + k] = llrs[block + mapped_index(k, n_cbps, n_bpsc)];
    }
  }
  return out;
}

}  // namespace rjf::phy80211
