#include "phy80211/constellation.h"

#include <array>
#include <cmath>

namespace rjf::phy80211 {
namespace {

// Gray mapping per axis, as in the standard's tables: input bits select an
// amplitude level. For 16-QAM: b0b1 -> {-3,-1,+3,+1}? No — the standard
// maps 00->-3, 01->-1, 11->+1, 10->+3. For 64-QAM the 3-bit Gray pattern
// is 000->-7, 001->-5, 011->-3, 010->-1, 110->+1, 111->+3, 101->+5, 100->+7.
constexpr std::array<float, 2> kPam2 = {-1.0f, 1.0f};
constexpr std::array<float, 4> kPam4 = {-3.0f, -1.0f, 3.0f, 1.0f};
constexpr std::array<float, 8> kPam8 = {-7.0f, -5.0f, -1.0f, -3.0f,
                                        7.0f,  5.0f,  1.0f,  3.0f};

float kmod(Modulation mod) {
  switch (mod) {
    case Modulation::kBpsk: return 1.0f;
    case Modulation::kQpsk: return 1.0f / std::sqrt(2.0f);
    case Modulation::kQam16: return 1.0f / std::sqrt(10.0f);
    case Modulation::kQam64: return 1.0f / std::sqrt(42.0f);
  }
  return 1.0f;
}

// Nearest-level hard decision, returning the Gray bits for that level.
template <std::size_t N>
unsigned slice(const std::array<float, N>& pam, float x) {
  unsigned best = 0;
  float best_dist = 1e30f;
  for (unsigned idx = 0; idx < N; ++idx) {
    const float d = std::abs(x - pam[idx]);
    if (d < best_dist) {
      best_dist = d;
      best = idx;
    }
  }
  return best;
}

}  // namespace

unsigned bits_per_symbol(Modulation mod) noexcept {
  switch (mod) {
    case Modulation::kBpsk: return 1;
    case Modulation::kQpsk: return 2;
    case Modulation::kQam16: return 4;
    case Modulation::kQam64: return 6;
  }
  return 1;
}

dsp::cvec map_bits(std::span<const std::uint8_t> bits, Modulation mod) {
  const unsigned bps = bits_per_symbol(mod);
  const float k = kmod(mod);
  dsp::cvec out;
  out.reserve(bits.size() / bps);
  for (std::size_t n = 0; n + bps <= bits.size(); n += bps) {
    float i = 0.0f;
    float q = 0.0f;
    switch (mod) {
      case Modulation::kBpsk:
        i = kPam2[bits[n]];
        q = 0.0f;
        break;
      case Modulation::kQpsk:
        i = kPam2[bits[n]];
        q = kPam2[bits[n + 1]];
        break;
      case Modulation::kQam16:
        i = kPam4[bits[n] | (bits[n + 1] << 1)];
        q = kPam4[bits[n + 2] | (bits[n + 3] << 1)];
        break;
      case Modulation::kQam64:
        i = kPam8[bits[n] | (bits[n + 1] << 1) | (bits[n + 2] << 2)];
        q = kPam8[bits[n + 3] | (bits[n + 4] << 1) | (bits[n + 5] << 2)];
        break;
    }
    out.emplace_back(i * k, q * k);
  }
  return out;
}

Bits demap_symbols(std::span<const dsp::cfloat> symbols, Modulation mod) {
  const float inv_k = 1.0f / kmod(mod);
  Bits out;
  out.reserve(symbols.size() * bits_per_symbol(mod));
  for (const dsp::cfloat s : symbols) {
    const float i = s.real() * inv_k;
    const float q = s.imag() * inv_k;
    switch (mod) {
      case Modulation::kBpsk: {
        out.push_back(i >= 0.0f ? 1 : 0);
        break;
      }
      case Modulation::kQpsk: {
        out.push_back(i >= 0.0f ? 1 : 0);
        out.push_back(q >= 0.0f ? 1 : 0);
        break;
      }
      case Modulation::kQam16: {
        const unsigned gi = slice(kPam4, i);
        const unsigned gq = slice(kPam4, q);
        out.push_back(gi & 1u);
        out.push_back((gi >> 1) & 1u);
        out.push_back(gq & 1u);
        out.push_back((gq >> 1) & 1u);
        break;
      }
      case Modulation::kQam64: {
        const unsigned gi = slice(kPam8, i);
        const unsigned gq = slice(kPam8, q);
        out.push_back(gi & 1u);
        out.push_back((gi >> 1) & 1u);
        out.push_back((gi >> 2) & 1u);
        out.push_back(gq & 1u);
        out.push_back((gq >> 1) & 1u);
        out.push_back((gq >> 2) & 1u);
        break;
      }
    }
  }
  return out;
}

std::vector<float> demap_soft(std::span<const dsp::cfloat> symbols,
                              Modulation mod, float noise_var) {
  const unsigned bps = bits_per_symbol(mod);
  const float inv_k = 1.0f / kmod(mod);
  const float scale = 2.0f / std::max(noise_var, 1e-9f);
  std::vector<float> llrs;
  llrs.reserve(symbols.size() * bps);

  // Max-log LLR per axis: for each bit, distance to the nearest level with
  // bit=1 minus distance to the nearest level with bit=0.
  const auto axis_llrs = [&](auto& pam, float x, unsigned bits_per_axis,
                             auto&& push) {
    for (unsigned b = 0; b < bits_per_axis; ++b) {
      float best0 = 1e30f, best1 = 1e30f;
      for (unsigned level = 0; level < pam.size(); ++level) {
        const float d = (x - pam[level]) * (x - pam[level]);
        if ((level >> b) & 1u)
          best1 = std::min(best1, d);
        else
          best0 = std::min(best0, d);
      }
      push(scale * (best0 - best1));
    }
  };

  for (const dsp::cfloat s : symbols) {
    const float i = s.real() * inv_k;
    const float q = s.imag() * inv_k;
    switch (mod) {
      case Modulation::kBpsk:
        llrs.push_back(scale * 2.0f * i);
        break;
      case Modulation::kQpsk:
        llrs.push_back(scale * 2.0f * i);
        llrs.push_back(scale * 2.0f * q);
        break;
      case Modulation::kQam16:
        axis_llrs(kPam4, i, 2, [&](float v) { llrs.push_back(v); });
        axis_llrs(kPam4, q, 2, [&](float v) { llrs.push_back(v); });
        break;
      case Modulation::kQam64:
        axis_llrs(kPam8, i, 3, [&](float v) { llrs.push_back(v); });
        axis_llrs(kPam8, q, 3, [&](float v) { llrs.push_back(v); });
        break;
    }
  }
  return llrs;
}

}  // namespace rjf::phy80211
