#include "phy80211/constellation.h"

#include <array>
#include <cmath>

namespace rjf::phy80211 {
namespace {

// Gray mapping per axis, as in the standard's tables: input bits select an
// amplitude level. For 16-QAM: b0b1 -> {-3,-1,+3,+1}? No — the standard
// maps 00->-3, 01->-1, 11->+1, 10->+3. For 64-QAM the 3-bit Gray pattern
// is 000->-7, 001->-5, 011->-3, 010->-1, 110->+1, 111->+3, 101->+5, 100->+7.
constexpr std::array<float, 2> kPam2 = {-1.0f, 1.0f};
constexpr std::array<float, 4> kPam4 = {-3.0f, -1.0f, 3.0f, 1.0f};
constexpr std::array<float, 8> kPam8 = {-7.0f, -5.0f, -1.0f, -3.0f,
                                        7.0f,  5.0f,  1.0f,  3.0f};

float kmod(Modulation mod) {
  switch (mod) {
    case Modulation::kBpsk: return 1.0f;
    case Modulation::kQpsk: return 1.0f / std::sqrt(2.0f);
    case Modulation::kQam16: return 1.0f / std::sqrt(10.0f);
    case Modulation::kQam64: return 1.0f / std::sqrt(42.0f);
  }
  return 1.0f;
}

// Nearest-level hard decisions in closed form.  Semantics match a
// first-minimum linear scan over the Gray tables above: a point exactly
// between two levels resolves to the LOWER table index of the pair, and
// NaN (every distance comparison false) resolves to index 0.  The
// comparison directions below encode exactly those winners; see the
// demap equivalence test for the exhaustive boundary check.
unsigned slice4(float x) noexcept {
  if (!(x > -2.0f)) return 0;  // x <= -2, or NaN
  if (x <= 0.0f) return 1;
  if (x < 2.0f) return 3;
  return 2;
}

unsigned slice8(float x) noexcept {
  if (!(x > -6.0f)) return 0;  // x <= -6, or NaN
  if (x <= -4.0f) return 1;
  if (x < -2.0f) return 3;     // tie at -2 goes to level -1 (index 2)
  if (x <= 0.0f) return 2;
  if (x <= 2.0f) return 6;
  if (x < 4.0f) return 7;      // tie at 4 goes to level 5 (index 5)
  if (x < 6.0f) return 5;      // tie at 6 goes to level 7 (index 4)
  return 4;
}

}  // namespace

unsigned bits_per_symbol(Modulation mod) noexcept {
  switch (mod) {
    case Modulation::kBpsk: return 1;
    case Modulation::kQpsk: return 2;
    case Modulation::kQam16: return 4;
    case Modulation::kQam64: return 6;
  }
  return 1;
}

dsp::cvec map_bits(std::span<const std::uint8_t> bits, Modulation mod) {
  const unsigned bps = bits_per_symbol(mod);
  const float k = kmod(mod);
  dsp::cvec out;
  out.reserve(bits.size() / bps);
  for (std::size_t n = 0; n + bps <= bits.size(); n += bps) {
    float i = 0.0f;
    float q = 0.0f;
    switch (mod) {
      case Modulation::kBpsk:
        i = kPam2[bits[n]];
        q = 0.0f;
        break;
      case Modulation::kQpsk:
        i = kPam2[bits[n]];
        q = kPam2[bits[n + 1]];
        break;
      case Modulation::kQam16:
        i = kPam4[bits[n] | (bits[n + 1] << 1)];
        q = kPam4[bits[n + 2] | (bits[n + 3] << 1)];
        break;
      case Modulation::kQam64:
        i = kPam8[bits[n] | (bits[n + 1] << 1) | (bits[n + 2] << 2)];
        q = kPam8[bits[n + 3] | (bits[n + 4] << 1) | (bits[n + 5] << 2)];
        break;
    }
    out.emplace_back(i * k, q * k);
  }
  return out;
}

Bits demap_symbols(std::span<const dsp::cfloat> symbols, Modulation mod) {
  Bits out(symbols.size() * bits_per_symbol(mod));
  demap_symbols_into(symbols, mod, out.data());
  return out;
}

namespace {

// Shared hard-demap loop over an output policy: Sink::put(j, bit) stores
// produced bit j either sequentially or through a scatter permutation.
template <class Sink>
void demap_hard_t(std::span<const dsp::cfloat> symbols, Modulation mod,
                  Sink sink) {
  const float inv_k = 1.0f / kmod(mod);
  std::size_t j = 0;
  switch (mod) {
    case Modulation::kBpsk:
      for (const dsp::cfloat s : symbols)
        sink.put(j++, s.real() * inv_k >= 0.0f ? 1 : 0);
      break;
    case Modulation::kQpsk:
      for (const dsp::cfloat s : symbols) {
        sink.put(j, s.real() * inv_k >= 0.0f ? 1 : 0);
        sink.put(j + 1, s.imag() * inv_k >= 0.0f ? 1 : 0);
        j += 2;
      }
      break;
    case Modulation::kQam16:
      for (const dsp::cfloat s : symbols) {
        const unsigned gi = slice4(s.real() * inv_k);
        const unsigned gq = slice4(s.imag() * inv_k);
        sink.put(j, static_cast<std::uint8_t>(gi & 1u));
        sink.put(j + 1, static_cast<std::uint8_t>((gi >> 1) & 1u));
        sink.put(j + 2, static_cast<std::uint8_t>(gq & 1u));
        sink.put(j + 3, static_cast<std::uint8_t>((gq >> 1) & 1u));
        j += 4;
      }
      break;
    case Modulation::kQam64:
      for (const dsp::cfloat s : symbols) {
        const unsigned gi = slice8(s.real() * inv_k);
        const unsigned gq = slice8(s.imag() * inv_k);
        sink.put(j, static_cast<std::uint8_t>(gi & 1u));
        sink.put(j + 1, static_cast<std::uint8_t>((gi >> 1) & 1u));
        sink.put(j + 2, static_cast<std::uint8_t>((gi >> 2) & 1u));
        sink.put(j + 3, static_cast<std::uint8_t>(gq & 1u));
        sink.put(j + 4, static_cast<std::uint8_t>((gq >> 1) & 1u));
        sink.put(j + 5, static_cast<std::uint8_t>((gq >> 2) & 1u));
        j += 6;
      }
      break;
  }
}

struct DirectBitSink {
  std::uint8_t* out;
  void put(std::size_t j, std::uint8_t b) const { out[j] = b; }
};

struct ScatterBitSink {
  const std::uint16_t* scatter;
  std::uint8_t* out;
  void put(std::size_t j, std::uint8_t b) const { out[scatter[j]] = b; }
};

}  // namespace

void demap_symbols_into(std::span<const dsp::cfloat> symbols, Modulation mod,
                        std::uint8_t* out) {
  demap_hard_t(symbols, mod, DirectBitSink{out});
}

void demap_symbols_scatter(std::span<const dsp::cfloat> symbols, Modulation mod,
                           const std::uint16_t* scatter, std::uint8_t* out) {
  demap_hard_t(symbols, mod, ScatterBitSink{scatter, out});
}

std::vector<float> demap_soft(std::span<const dsp::cfloat> symbols,
                              Modulation mod, float noise_var) {
  std::vector<float> llrs(symbols.size() * bits_per_symbol(mod));
  demap_soft_into(symbols, mod, noise_var, llrs.data());
  return llrs;
}

namespace {

template <class Sink>
void demap_soft_t(std::span<const dsp::cfloat> symbols, Modulation mod,
                  float noise_var, Sink sink) {
  const float inv_k = 1.0f / kmod(mod);
  const float scale = 2.0f / std::max(noise_var, 1e-9f);

  // Max-log LLR per axis: for each bit, distance to the nearest level with
  // bit=1 minus distance to the nearest level with bit=0.
  const auto axis_llrs = [&](auto& pam, float x, unsigned bits_per_axis,
                             std::size_t j) {
    for (unsigned b = 0; b < bits_per_axis; ++b) {
      float best0 = 1e30f, best1 = 1e30f;
      for (unsigned level = 0; level < pam.size(); ++level) {
        const float d = (x - pam[level]) * (x - pam[level]);
        if ((level >> b) & 1u)
          best1 = std::min(best1, d);
        else
          best0 = std::min(best0, d);
      }
      sink.put(j + b, scale * (best0 - best1));
    }
  };

  std::size_t j = 0;
  for (const dsp::cfloat s : symbols) {
    const float i = s.real() * inv_k;
    const float q = s.imag() * inv_k;
    switch (mod) {
      case Modulation::kBpsk:
        sink.put(j, scale * 2.0f * i);
        j += 1;
        break;
      case Modulation::kQpsk:
        sink.put(j, scale * 2.0f * i);
        sink.put(j + 1, scale * 2.0f * q);
        j += 2;
        break;
      case Modulation::kQam16:
        axis_llrs(kPam4, i, 2, j);
        axis_llrs(kPam4, q, 2, j + 2);
        j += 4;
        break;
      case Modulation::kQam64:
        axis_llrs(kPam8, i, 3, j);
        axis_llrs(kPam8, q, 3, j + 3);
        j += 6;
        break;
    }
  }
}

struct DirectLlrSink {
  float* out;
  void put(std::size_t j, float v) const { out[j] = v; }
};

struct ScatterLlrSink {
  const std::uint16_t* scatter;
  float* out;
  void put(std::size_t j, float v) const { out[scatter[j]] = v; }
};

}  // namespace

void demap_soft_into(std::span<const dsp::cfloat> symbols, Modulation mod,
                     float noise_var, float* out) {
  demap_soft_t(symbols, mod, noise_var, DirectLlrSink{out});
}

void demap_soft_scatter(std::span<const dsp::cfloat> symbols, Modulation mod,
                        float noise_var, const std::uint16_t* scatter,
                        float* out) {
  demap_soft_t(symbols, mod, noise_var, ScatterLlrSink{scatter, out});
}

}  // namespace rjf::phy80211
