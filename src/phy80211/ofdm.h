// OFDM symbol construction/deconstruction for 802.11a/g: 64-point FFT,
// 48 data subcarriers, 4 pilots (±7, ±21) with the 127-period polarity
// sequence, and a 16-sample (0.8 µs) cyclic prefix at 20 MSPS.
#pragma once

#include <array>

#include "dsp/types.h"
#include "phy80211/bits.h"

namespace rjf::phy80211 {

inline constexpr std::size_t kFftSize = 64;
inline constexpr std::size_t kCpLen = 16;
inline constexpr std::size_t kSymbolLen = kFftSize + kCpLen;  // 80 samples
inline constexpr std::size_t kNumDataCarriers = 48;
inline constexpr double kSampleRateHz = 20e6;  // 802.11g native rate

/// Logical subcarrier indices (-26..26, excluding 0 and pilots) of the 48
/// data carriers, in increasing order.
[[nodiscard]] const std::array<int, kNumDataCarriers>& data_carriers() noexcept;

/// Pilot polarity p_n for OFDM symbol index n (0 = SIGNAL symbol).
[[nodiscard]] float pilot_polarity(std::size_t symbol_index) noexcept;

/// Map a logical subcarrier index (-32..31) to its FFT bin (0..63).
[[nodiscard]] constexpr std::size_t fft_bin(int carrier) noexcept {
  return carrier >= 0 ? static_cast<std::size_t>(carrier)
                      : static_cast<std::size_t>(64 + carrier);
}

/// Build one time-domain OFDM symbol (80 samples incl. CP) from 48 data
/// symbols. `symbol_index` selects the pilot polarity.
[[nodiscard]] dsp::cvec modulate_symbol(std::span<const dsp::cfloat> data48,
                                        std::size_t symbol_index);

/// Inverse: strip CP, FFT, equalise with `channel` (per-bin complex gains),
/// correct residual common phase from the pilots, return the 48 data bins.
[[nodiscard]] dsp::cvec demodulate_symbol(
    std::span<const dsp::cfloat> symbol80,
    std::span<const dsp::cfloat> channel /* 64 bins */,
    std::size_t symbol_index);

/// Precomputed equaliser for a run of OFDM symbols through one channel
/// estimate.  The 1/gain amplitude scaling and the per-bin zero-forcing
/// division are folded into a single complex multiplier per bin at
/// construction, so the per-symbol work is strip-CP + FFT + one multiply
/// per bin — no complex divisions in the symbol loop.  Bins whose channel
/// estimate is effectively zero equalise to 0, as in demodulate_symbol().
class SymbolDemodulator {
 public:
  /// `channel`: per-bin complex gains (up to 64 bins; missing bins are
  /// treated as 1, matching demodulate_symbol()).
  explicit SymbolDemodulator(std::span<const dsp::cfloat> channel);

  /// Demodulate one 80-sample symbol (CP + body) into `out48[0..48)`.
  /// `symbol_index` selects the pilot polarity (0 = SIGNAL symbol).
  void run(std::span<const dsp::cfloat> symbol80, std::size_t symbol_index,
           dsp::cfloat* out48) const;

 private:
  std::array<dsp::cfloat, kFftSize> inv_channel_;
};

}  // namespace rjf::phy80211
