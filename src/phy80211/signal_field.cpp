#include "phy80211/signal_field.h"

namespace rjf::phy80211 {

Bits encode_signal(const SignalField& field) {
  Bits bits;
  bits.reserve(24);
  const auto& params = rate_params(field.rate);
  // RATE is transmitted MSB first (bit R1 first in the standard's ordering).
  for (int b = 3; b >= 0; --b)
    bits.push_back((params.signal_rate_bits >> b) & 1u);
  bits.push_back(0);  // reserved
  append_uint(bits, field.length & 0xFFF, 12);  // LENGTH, LSB first
  std::uint8_t parity = 0;
  for (const std::uint8_t bit : bits) parity ^= bit;
  bits.push_back(parity);
  for (int t = 0; t < 6; ++t) bits.push_back(0);  // tail
  return bits;
}

std::optional<SignalField> decode_signal(std::span<const std::uint8_t> bits24) {
  if (bits24.size() < 24) return std::nullopt;
  std::uint8_t parity = 0;
  for (std::size_t k = 0; k < 18; ++k) parity ^= bits24[k] & 1u;
  if (parity != 0) return std::nullopt;
  if (bits24[4] != 0) return std::nullopt;  // reserved must be 0

  std::uint8_t rate_bits = 0;
  for (int b = 0; b < 4; ++b)
    rate_bits = static_cast<std::uint8_t>((rate_bits << 1) | (bits24[b] & 1u));
  const auto rate = rate_from_signal_bits(rate_bits);
  if (!rate) return std::nullopt;

  SignalField field;
  field.rate = *rate;
  field.length = static_cast<std::uint16_t>(read_uint(bits24, 5, 12));
  if (field.length == 0) return std::nullopt;
  return field;
}

}  // namespace rjf::phy80211
