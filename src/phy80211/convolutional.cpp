#include "phy80211/convolutional.h"

#include <algorithm>
#include <array>
#include <limits>

#include "dsp/simd/dispatch.h"
#include "dsp/simd/viterbi.h"
#include "dsp/simd/viterbi_trellis.h"

namespace rjf::phy80211 {
namespace {

constexpr unsigned kG0 = 0133;  // 1011011
constexpr unsigned kG1 = 0171;  // 1111001
constexpr unsigned kStates = 64;

constexpr std::uint8_t parity(unsigned x) noexcept {
  x ^= x >> 4;
  x ^= x >> 2;
  x ^= x >> 1;
  return static_cast<std::uint8_t>(x & 1u);
}

// Puncturing patterns over one period of (A, B) output pairs.
// 2/3: period 2 input bits, transmit a0 b0 a1 (drop b1).
// 3/4: period 3 input bits, transmit a0 b0 a1 b2 (drop b1, a2).
struct PuncturePattern {
  std::size_t period;              // mother bits per period (2 * inputs)
  std::array<bool, 6> keep;        // keep mask over a0 b0 a1 b1 a2 b2
};

PuncturePattern pattern_for(CodeRate rate) noexcept {
  switch (rate) {
    case CodeRate::kHalf:
      return {2, {true, true, false, false, false, false}};
    case CodeRate::kTwoThirds:
      return {4, {true, true, true, false, false, false}};
    case CodeRate::kThreeQuarters:
      return {6, {true, true, true, false, false, true}};
  }
  return {2, {true, true, false, false, false, false}};
}

}  // namespace

RateFraction rate_fraction(CodeRate rate) noexcept {
  switch (rate) {
    case CodeRate::kHalf: return {1, 2};
    case CodeRate::kTwoThirds: return {2, 3};
    case CodeRate::kThreeQuarters: return {3, 4};
  }
  return {1, 2};
}

Bits convolutional_encode(std::span<const std::uint8_t> data) {
  Bits out;
  out.reserve(data.size() * 2);
  unsigned shift = 0;  // bit0 = most recent input
  for (const std::uint8_t bit : data) {
    shift = ((shift << 1) | (bit & 1u)) & 0x7F;
    out.push_back(parity(shift & kG0));
    out.push_back(parity(shift & kG1));
  }
  return out;
}

Bits puncture(std::span<const std::uint8_t> coded, CodeRate rate) {
  const PuncturePattern p = pattern_for(rate);
  Bits out;
  out.reserve(coded.size());
  for (std::size_t k = 0; k < coded.size(); ++k)
    if (p.keep[k % p.period]) out.push_back(coded[k]);
  return out;
}

Bits depuncture(std::span<const std::uint8_t> punctured, CodeRate rate,
                std::size_t n_mother) {
  const PuncturePattern p = pattern_for(rate);
  Bits out(n_mother, 2);  // 2 == erasure
  std::size_t src = 0;
  for (std::size_t k = 0; k < n_mother && src < punctured.size(); ++k)
    if (p.keep[k % p.period]) out[k] = punctured[src++];
  return out;
}

namespace {

// Traceback over the packed survivor words the SIMD ACS kernels emit: bit
// `state` of survivors[t] is the evicted bit stored for that state, i.e.
// the same value the reference keeps in survivor[t][state].
Bits traceback_packed(const std::vector<std::uint64_t>& survivors,
                      unsigned state) {
  const std::size_t n_steps = survivors.size();
  Bits decoded(n_steps, 0);
  for (std::size_t t = n_steps; t-- > 0;) {
    const unsigned evicted =
        static_cast<unsigned>((survivors[t] >> state) & 1u);
    decoded[t] = static_cast<std::uint8_t>(state & 1u);
    state = (state >> 1) | (evicted << 5);
  }
  return decoded;
}

}  // namespace

Bits viterbi_decode(std::span<const std::uint8_t> coded) {
  const std::size_t n_steps = coded.size() / 2;
  const dsp::simd::Isa isa = dsp::simd::active_isa();
  if (isa != dsp::simd::Isa::kScalar) {
    std::vector<std::uint64_t> survivors(n_steps);
    std::array<std::uint16_t, kStates> finals;
    if (dsp::simd::viterbi_hard_acs(isa, coded, survivors.data(),
                                    finals.data())) {
      // Terminate in state 0, like the reference. State 0 is always live
      // (the all-zero path has finite cost), so the reference's
      // best-state fallback is unreachable; keep it anyway for parity.
      unsigned state = 0;
      if (finals[0] >= dsp::simd::kVitDead)
        state = static_cast<unsigned>(
            std::min_element(finals.begin(), finals.end()) - finals.begin());
      return traceback_packed(survivors, state);
    }
  }
  return viterbi_decode_reference(coded);
}

Bits viterbi_decode_reference(std::span<const std::uint8_t> coded) {
  const std::size_t n_steps = coded.size() / 2;
  constexpr std::uint32_t kInf = std::numeric_limits<std::uint32_t>::max() / 4;

  // Precompute expected output pair per (state, input).
  std::array<std::array<std::uint8_t, 2>, kStates * 2> expected{};
  for (unsigned state = 0; state < kStates; ++state) {
    for (unsigned input = 0; input < 2; ++input) {
      const unsigned shift = ((state << 1) | input) & 0x7F;
      expected[state * 2 + input] = {parity(shift & kG0), parity(shift & kG1)};
    }
  }

  std::vector<std::uint32_t> metric(kStates, kInf);
  std::vector<std::uint32_t> next_metric(kStates, kInf);
  metric[0] = 0;  // encoder starts zeroed
  // survivor[t][state] = input bit chosen to reach `state` at step t+1,
  // plus the predecessor's low bits implied by the trellis structure.
  std::vector<std::vector<std::uint8_t>> survivor(
      n_steps, std::vector<std::uint8_t>(kStates, 0));

  for (std::size_t t = 0; t < n_steps; ++t) {
    const std::uint8_t r0 = coded[2 * t];
    const std::uint8_t r1 = coded[2 * t + 1];
    std::fill(next_metric.begin(), next_metric.end(), kInf);
    for (unsigned state = 0; state < kStates; ++state) {
      if (metric[state] >= kInf) continue;
      for (unsigned input = 0; input < 2; ++input) {
        const auto& exp = expected[state * 2 + input];
        std::uint32_t branch = 0;
        if (r0 != 2 && exp[0] != r0) ++branch;
        if (r1 != 2 && exp[1] != r1) ++branch;
        // Next state: shift register gains `input`, drops the oldest bit.
        const unsigned next = ((state << 1) | input) & (kStates - 1);
        const std::uint32_t cand = metric[state] + branch;
        if (cand < next_metric[next]) {
          next_metric[next] = cand;
          survivor[t][next] =
              static_cast<std::uint8_t>((state >> 5) & 1u);  // evicted bit
        }
      }
    }
    metric.swap(next_metric);
  }

  // Terminate in state 0 (tail bits force it); fall back to the best state
  // if the tail was corrupted beyond repair.
  unsigned state = 0;
  if (metric[0] >= kInf)
    state = static_cast<unsigned>(
        std::min_element(metric.begin(), metric.end()) - metric.begin());

  // Traceback: at each step the decoded input is the state's LSB, and the
  // predecessor is recovered by shifting in the stored evicted bit.
  Bits decoded(n_steps, 0);
  for (std::size_t t = n_steps; t-- > 0;) {
    decoded[t] = static_cast<std::uint8_t>(state & 1u);
    state = (state >> 1) | (static_cast<unsigned>(survivor[t][state]) << 5);
  }
  return decoded;
}

std::vector<float> depuncture_soft(std::span<const float> llrs, CodeRate rate,
                                   std::size_t n_mother) {
  const PuncturePattern p = pattern_for(rate);
  std::vector<float> out(n_mother, 0.0f);
  std::size_t src = 0;
  for (std::size_t k = 0; k < n_mother && src < llrs.size(); ++k)
    if (p.keep[k % p.period]) out[k] = llrs[src++];
  return out;
}

Bits viterbi_decode_soft(std::span<const float> llrs) {
  const std::size_t n_steps = llrs.size() / 2;
  const dsp::simd::Isa isa = dsp::simd::active_isa();
  if (isa != dsp::simd::Isa::kScalar) {
    std::vector<std::uint64_t> survivors(n_steps);
    std::array<float, kStates> finals;
    if (dsp::simd::viterbi_soft_acs(isa, llrs, survivors.data(),
                                    finals.data())) {
      unsigned state = 0;
      if (finals[0] >= dsp::simd::kVitSoftInf)
        state = static_cast<unsigned>(
            std::min_element(finals.begin(), finals.end()) - finals.begin());
      return traceback_packed(survivors, state);
    }
  }
  return viterbi_decode_soft_reference(llrs);
}

Bits viterbi_decode_soft_reference(std::span<const float> llrs) {
  const std::size_t n_steps = llrs.size() / 2;
  constexpr float kInf = 1e30f;

  std::array<std::array<std::uint8_t, 2>, kStates * 2> expected{};
  for (unsigned state = 0; state < kStates; ++state) {
    for (unsigned input = 0; input < 2; ++input) {
      const unsigned shift = ((state << 1) | input) & 0x7F;
      expected[state * 2 + input] = {parity(shift & kG0), parity(shift & kG1)};
    }
  }

  std::vector<float> metric(kStates, kInf);
  std::vector<float> next_metric(kStates, kInf);
  metric[0] = 0.0f;
  std::vector<std::vector<std::uint8_t>> survivor(
      n_steps, std::vector<std::uint8_t>(kStates, 0));

  for (std::size_t t = 0; t < n_steps; ++t) {
    const float l0 = llrs[2 * t];
    const float l1 = llrs[2 * t + 1];
    std::fill(next_metric.begin(), next_metric.end(), kInf);
    for (unsigned state = 0; state < kStates; ++state) {
      if (metric[state] >= kInf) continue;
      for (unsigned input = 0; input < 2; ++input) {
        const auto& exp = expected[state * 2 + input];
        // Cost of the expected bit disagreeing with the LLR's sign,
        // weighted by the LLR magnitude (max-log metric).
        float branch = 0.0f;
        branch += exp[0] ? std::max(-l0, 0.0f) : std::max(l0, 0.0f);
        branch += exp[1] ? std::max(-l1, 0.0f) : std::max(l1, 0.0f);
        const unsigned next = ((state << 1) | input) & (kStates - 1);
        const float cand = metric[state] + branch;
        if (cand < next_metric[next]) {
          next_metric[next] = cand;
          survivor[t][next] =
              static_cast<std::uint8_t>((state >> 5) & 1u);
        }
      }
    }
    metric.swap(next_metric);
  }

  unsigned state = 0;
  if (metric[0] >= kInf)
    state = static_cast<unsigned>(
        std::min_element(metric.begin(), metric.end()) - metric.begin());

  Bits decoded(n_steps, 0);
  for (std::size_t t = n_steps; t-- > 0;) {
    decoded[t] = static_cast<std::uint8_t>(state & 1u);
    state = (state >> 1) | (static_cast<unsigned>(survivor[t][state]) << 5);
  }
  return decoded;
}

Bits decode_at_rate_soft(std::span<const float> llrs, CodeRate rate,
                         std::size_t n_data_bits) {
  const std::vector<float> mother =
      depuncture_soft(llrs, rate, n_data_bits * 2);
  return viterbi_decode_soft(mother);
}

Bits encode_at_rate(std::span<const std::uint8_t> data, CodeRate rate) {
  return puncture(convolutional_encode(data), rate);
}

Bits decode_at_rate(std::span<const std::uint8_t> punctured, CodeRate rate,
                    std::size_t n_data_bits) {
  const Bits mother = depuncture(punctured, rate, n_data_bits * 2);
  return viterbi_decode(mother);
}

}  // namespace rjf::phy80211
