#include "phy80211/transmitter.h"

#include "phy80211/interleaver.h"
#include "phy80211/ofdm.h"
#include "phy80211/preamble.h"
#include "phy80211/scrambler.h"
#include "phy80211/signal_field.h"

namespace rjf::phy80211 {
namespace {

// SIGNAL symbol: BPSK rate-1/2, never scrambled, pilot index 0.
dsp::cvec build_signal_symbol(Rate rate, std::size_t psdu_bytes) {
  const Bits bits = encode_signal(
      SignalField{rate, static_cast<std::uint16_t>(psdu_bytes)});
  const Bits coded = encode_at_rate(bits, CodeRate::kHalf);
  const Bits inter = interleave(coded, 48, 1);
  const dsp::cvec mapped = map_bits(inter, Modulation::kBpsk);
  return modulate_symbol(mapped, 0);
}

}  // namespace

dsp::cvec Transmitter::transmit(std::span<const std::uint8_t> psdu) const {
  const auto& p = rate_params(config_.rate);

  // DATA bit assembly: 16 SERVICE zeros (7 of which sync the descrambler),
  // the PSDU LSB-first, 6 tail zeros, zero-pad to a symbol boundary.
  Bits data;
  data.reserve(16 + psdu.size() * 8 + 6 + p.n_dbps);
  for (int k = 0; k < 16; ++k) data.push_back(0);
  const Bits payload = bits_from_bytes(psdu);
  data.insert(data.end(), payload.begin(), payload.end());
  for (int k = 0; k < 6; ++k) data.push_back(0);
  const std::size_t n_sym = num_data_symbols(config_.rate, psdu.size());
  data.resize(n_sym * p.n_dbps, 0);

  // Scramble everything, then force the 6 tail bits back to zero so the
  // convolutional code terminates (standard 17.3.5.3).
  Scrambler scrambler(config_.scrambler_seed);
  Bits scrambled = scrambler.process(data);
  const std::size_t tail_at = 16 + psdu.size() * 8;
  for (std::size_t k = 0; k < 6; ++k) scrambled[tail_at + k] = 0;

  const Bits coded = encode_at_rate(scrambled, p.code_rate);

  dsp::cvec waveform = plcp_preamble();
  const dsp::cvec signal = build_signal_symbol(config_.rate, psdu.size());
  waveform.insert(waveform.end(), signal.begin(), signal.end());

  for (std::size_t s = 0; s < n_sym; ++s) {
    const std::span<const std::uint8_t> chunk(coded.data() + s * p.n_cbps,
                                              p.n_cbps);
    const Bits inter = interleave(chunk, p.n_cbps, p.n_bpsc);
    const dsp::cvec mapped = map_bits(inter, p.modulation);
    const dsp::cvec sym = modulate_symbol(mapped, s + 1);
    waveform.insert(waveform.end(), sym.begin(), sym.end());
  }
  return waveform;
}

dsp::cvec Transmitter::single_short_preamble_frame() {
  return short_training_symbol();
}

dsp::cvec Transmitter::single_long_preamble_frame() {
  return long_training_symbol();
}

}  // namespace rjf::phy80211
