#include "phy80211/ofdm.h"

#include <cmath>

#include <algorithm>

#include "dsp/fft.h"
#include "dsp/fft_plan.h"
#include "phy80211/scrambler.h"

namespace rjf::phy80211 {
namespace {

constexpr std::array<int, 4> kPilotCarriers = {-21, -7, 7, 21};
// Pilot base values at {-21,-7,7,21}; the last pilot is inverted.
constexpr std::array<float, 4> kPilotValues = {1.0f, 1.0f, 1.0f, -1.0f};

std::array<int, kNumDataCarriers> make_data_carriers() {
  std::array<int, kNumDataCarriers> list{};
  std::size_t n = 0;
  for (int k = -26; k <= 26; ++k) {
    if (k == 0 || k == -21 || k == -7 || k == 7 || k == 21) continue;
    list[n++] = k;
  }
  return list;
}

}  // namespace

const std::array<int, kNumDataCarriers>& data_carriers() noexcept {
  static const auto kList = make_data_carriers();
  return kList;
}

float pilot_polarity(std::size_t symbol_index) noexcept {
  static const Bits kSeq = pilot_polarity_sequence();
  // p_n = 1 - 2 * seq[n mod 127]
  return kSeq[symbol_index % kSeq.size()] ? -1.0f : 1.0f;
}

dsp::cvec modulate_symbol(std::span<const dsp::cfloat> data48,
                          std::size_t symbol_index) {
  dsp::cvec freq(kFftSize, dsp::cfloat{});
  const auto& carriers = data_carriers();
  for (std::size_t n = 0; n < kNumDataCarriers && n < data48.size(); ++n)
    freq[fft_bin(carriers[n])] = data48[n];
  const float polarity = pilot_polarity(symbol_index);
  for (std::size_t p = 0; p < kPilotCarriers.size(); ++p)
    freq[fft_bin(kPilotCarriers[p])] = dsp::cfloat{kPilotValues[p] * polarity, 0.0f};

  dsp::cvec time = dsp::ifft_copy(freq);
  // Scale so the mean power over occupied carriers is ~1 per time sample:
  // 52 active bins out of 64 with IFFT's 1/N normalisation gives mean power
  // 52/64^2 per sample; multiply by 64/sqrt(52) to land at unit power.
  const float gain = static_cast<float>(kFftSize / std::sqrt(52.0));
  for (auto& s : time) s *= gain;

  dsp::cvec out;
  out.reserve(kSymbolLen);
  out.insert(out.end(), time.end() - kCpLen, time.end());  // cyclic prefix
  out.insert(out.end(), time.begin(), time.end());
  return out;
}

dsp::cvec demodulate_symbol(std::span<const dsp::cfloat> symbol80,
                            std::span<const dsp::cfloat> channel,
                            std::size_t symbol_index) {
  const SymbolDemodulator demod(channel);
  dsp::cvec data(kNumDataCarriers);
  demod.run(symbol80, symbol_index, data.data());
  return data;
}

SymbolDemodulator::SymbolDemodulator(std::span<const dsp::cfloat> channel) {
  // Zero-forcing equalisation as a multiply: x/h == x * conj(h)/|h|^2.
  // The transmit gain (64/sqrt(52), applied per time sample on the way
  // out) is undone here as well — the FFT is linear, so dividing the
  // frequency bins is the same as dividing the time samples.
  const float inv_gain = static_cast<float>(std::sqrt(52.0) / kFftSize);
  for (std::size_t bin = 0; bin < kFftSize; ++bin) {
    const dsp::cfloat h =
        bin < channel.size() ? channel[bin] : dsp::cfloat{1, 0};
    const float n = std::norm(h);
    inv_channel_[bin] =
        (n > 1e-12f) ? std::conj(h) * (inv_gain / n) : dsp::cfloat{};
  }
}

void SymbolDemodulator::run(std::span<const dsp::cfloat> symbol80,
                            std::size_t symbol_index,
                            dsp::cfloat* out48) const {
  std::array<dsp::cfloat, kFftSize> eq;
  std::copy(symbol80.begin() + kCpLen, symbol80.end(), eq.begin());
  static const dsp::FftPlan& kPlan = dsp::FftPlan::of(kFftSize);
  kPlan.forward(eq.data());
  for (std::size_t bin = 0; bin < kFftSize; ++bin) eq[bin] *= inv_channel_[bin];

  // Common phase error from the pilots.
  const float polarity = pilot_polarity(symbol_index);
  dsp::cfloat pilot_acc{};
  for (std::size_t p = 0; p < kPilotCarriers.size(); ++p) {
    const dsp::cfloat expected{kPilotValues[p] * polarity, 0.0f};
    pilot_acc += eq[fft_bin(kPilotCarriers[p])] * std::conj(expected);
  }
  const float mag = std::abs(pilot_acc);
  const dsp::cfloat phase_corr =
      mag > 1e-9f ? std::conj(pilot_acc) / mag : dsp::cfloat{1, 0};

  const auto& carriers = data_carriers();
  for (std::size_t n = 0; n < kNumDataCarriers; ++n)
    out48[n] = eq[fft_bin(carriers[n])] * phase_corr;
}

}  // namespace rjf::phy80211
