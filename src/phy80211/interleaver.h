// 802.11 per-symbol block interleaver (two-permutation form).
#pragma once

#include "phy80211/bits.h"

namespace rjf::phy80211 {

/// Interleave one OFDM symbol's worth of coded bits.
/// `n_cbps`: coded bits per symbol; `n_bpsc`: coded bits per subcarrier.
[[nodiscard]] Bits interleave(std::span<const std::uint8_t> bits,
                              unsigned n_cbps, unsigned n_bpsc);

/// Exact inverse of interleave().
[[nodiscard]] Bits deinterleave(std::span<const std::uint8_t> bits,
                                unsigned n_cbps, unsigned n_bpsc);

/// Soft-value variant for the LLR receive path.
[[nodiscard]] std::vector<float> deinterleave_soft(std::span<const float> llrs,
                                                   unsigned n_cbps,
                                                   unsigned n_bpsc);

}  // namespace rjf::phy80211
