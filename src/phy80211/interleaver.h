// 802.11 per-symbol block interleaver (two-permutation form).
#pragma once

#include "phy80211/bits.h"

namespace rjf::phy80211 {

/// Interleave one OFDM symbol's worth of coded bits.
/// `n_cbps`: coded bits per symbol; `n_bpsc`: coded bits per subcarrier.
[[nodiscard]] Bits interleave(std::span<const std::uint8_t> bits,
                              unsigned n_cbps, unsigned n_bpsc);

/// Exact inverse of interleave().
[[nodiscard]] Bits deinterleave(std::span<const std::uint8_t> bits,
                                unsigned n_cbps, unsigned n_bpsc);

/// Soft-value variant for the LLR receive path.
[[nodiscard]] std::vector<float> deinterleave_soft(std::span<const float> llrs,
                                                   unsigned n_cbps,
                                                   unsigned n_bpsc);

/// Destination index of source bit `k` under the two-permutation map
/// (equations 17-18 in the standard).  This is the closed-form reference
/// the cached permutation tables are built from; exposed so tests can
/// check table contents independently.
[[nodiscard]] std::size_t interleaver_mapped_index(std::size_t k,
                                                   unsigned n_cbps,
                                                   unsigned n_bpsc);

/// Scatter table for fusing the deinterleaver into a demapper: entry j is
/// the deinterleaved position of received bit j within one `n_cbps`-bit
/// block, so `out[table[j]] = raw[j]` reproduces `deinterleave()` without
/// a separate gather pass.  Returns nullptr for parameter combinations
/// outside the four 802.11a/g (n_cbps, n_bpsc) pairs.
[[nodiscard]] const std::uint16_t* deinterleave_scatter(unsigned n_cbps,
                                                        unsigned n_bpsc);

}  // namespace rjf::phy80211
