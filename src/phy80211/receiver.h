// 802.11a/g PPDU receiver.
//
// Decodes a baseband capture back to the PSDU: fine timing from the long
// training symbols, per-bin channel estimate from the two LTS copies,
// SIGNAL decode, then the DATA pipeline in reverse (demap -> deinterleave ->
// depuncture -> Viterbi -> descramble). The MAC layer checks the FCS; this
// layer reports PHY-level failures (sync, SIGNAL parity/rate) directly.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "dsp/types.h"
#include "phy80211/rates.h"
#include "phy80211/signal_field.h"

namespace rjf::phy80211 {

struct RxResult {
  bool synchronized = false;       // LTS found
  bool signal_valid = false;       // SIGNAL parity + rate decode OK
  std::optional<SignalField> signal;
  std::vector<std::uint8_t> psdu;  // decoded bytes (possibly corrupted)
};

class Receiver {
 public:
  /// `sync_search` is the +/- window (in samples) around the nominal frame
  /// start that the LTS timing search covers. `soft_decisions` switches
  /// the DATA pipeline from hard slicing to max-log LLRs with a soft
  /// Viterbi — ~2 dB of coding gain, at some decode cost.
  explicit Receiver(std::size_t sync_search = 8,
                    bool soft_decisions = false) noexcept
      : sync_search_(sync_search), soft_(soft_decisions) {}

  /// Decode a capture whose frame nominally starts at `capture[0]`.
  [[nodiscard]] RxResult receive(std::span<const dsp::cfloat> capture) const;

 private:
  std::size_t sync_search_;
  bool soft_;
};

}  // namespace rjf::phy80211
