#include "phy80211/preamble.h"

#include <array>
#include <cmath>

#include "dsp/db.h"
#include "dsp/fft.h"
#include "phy80211/ofdm.h"

namespace rjf::phy80211 {
namespace {

// Non-zero short-training subcarriers (k, value/(1+j)); the standard's
// S_k sequence has magnitude sqrt(13/6)*(1+j) entries every 4th carrier.
struct StsEntry {
  int carrier;
  float sign;  // multiplies (1+j)
};
constexpr std::array<StsEntry, 12> kSts = {{{-24, 1.0f},
                                            {-20, -1.0f},
                                            {-16, 1.0f},
                                            {-12, -1.0f},
                                            {-8, -1.0f},
                                            {-4, 1.0f},
                                            {4, -1.0f},
                                            {8, -1.0f},
                                            {12, 1.0f},
                                            {16, 1.0f},
                                            {20, 1.0f},
                                            {24, 1.0f}}};

// LTS: +1/-1 values on carriers -26..26 (0 excluded -> value 0).
constexpr std::array<int, 53> kLts = {
    1, 1, -1, -1, 1,  1,  -1, 1,  -1, 1,  1,  1,  1,  1,  1, -1, -1, 1,
    1, -1, 1, -1, 1,  1,  1,  1,  0,  1,  -1, -1, 1,  1,  -1, 1,  -1, 1,
    -1, -1, -1, -1, -1, 1,  1,  -1, -1, 1,  -1, 1,  -1, 1,  1,  1,  1};

dsp::cvec normalise(dsp::cvec x) {
  dsp::set_mean_power(std::span<dsp::cfloat>(x), 1.0);
  return x;
}

}  // namespace

dsp::cvec short_training_symbol() {
  dsp::cvec freq(kFftSize, dsp::cfloat{});
  const float amp = std::sqrt(13.0f / 6.0f);
  for (const auto& e : kSts)
    freq[fft_bin(e.carrier)] = dsp::cfloat{e.sign * amp, e.sign * amp};
  dsp::cvec time = dsp::ifft_copy(freq);
  // The 64-sample IFFT of the 4-spaced STS grid is periodic with period 16.
  dsp::cvec period(time.begin(), time.begin() + kShortSymbolLen);
  return normalise(std::move(period));
}

dsp::cvec short_preamble() {
  const dsp::cvec sym = short_training_symbol();
  dsp::cvec out;
  out.reserve(kShortPreambleLen);
  for (int rep = 0; rep < 10; ++rep) out.insert(out.end(), sym.begin(), sym.end());
  return out;
}

dsp::cvec long_training_symbol() {
  dsp::cvec freq = lts_frequency_domain();
  dsp::cvec time = dsp::ifft_copy(freq);
  return normalise(std::move(time));
}

dsp::cvec long_preamble() {
  const dsp::cvec sym = long_training_symbol();
  dsp::cvec out;
  out.reserve(kLongPreambleLen);
  // GI2: double-length guard = last 32 samples of the LTS.
  out.insert(out.end(), sym.end() - 32, sym.end());
  out.insert(out.end(), sym.begin(), sym.end());
  out.insert(out.end(), sym.begin(), sym.end());
  return out;
}

dsp::cvec lts_frequency_domain() {
  dsp::cvec freq(kFftSize, dsp::cfloat{});
  for (int k = -26; k <= 26; ++k)
    freq[fft_bin(k)] =
        dsp::cfloat{static_cast<float>(kLts[static_cast<std::size_t>(k + 26)]), 0.0f};
  return freq;
}

dsp::cvec plcp_preamble() {
  dsp::cvec out = short_preamble();
  const dsp::cvec lp = long_preamble();
  out.insert(out.end(), lp.begin(), lp.end());
  return out;
}

}  // namespace rjf::phy80211
