// Full 802.11a/g PPDU transmitter: PSDU bytes in, 20 MSPS baseband out.
//
// Pipeline (standard clause 17): PLCP preamble | SIGNAL symbol | DATA
// symbols, where DATA = scramble(SERVICE + PSDU + tail + pad) -> convolve ->
// puncture -> interleave -> map -> OFDM modulate.
#pragma once

#include <cstdint>

#include "dsp/types.h"
#include "phy80211/rates.h"

namespace rjf::phy80211 {

struct TxConfig {
  Rate rate = Rate::kMbps54;
  std::uint8_t scrambler_seed = 0x5D;  // nonzero 7-bit initial state
};

class Transmitter {
 public:
  explicit Transmitter(TxConfig config = {}) noexcept : config_(config) {}

  /// Build the complete PPDU waveform for a PSDU (MAC frame incl. FCS).
  [[nodiscard]] dsp::cvec transmit(std::span<const std::uint8_t> psdu) const;

  /// Generate only the pseudo-frames of paper §3.2 ("pseudo-frames with
  /// only a single short or long preamble") for detector characterisation.
  [[nodiscard]] static dsp::cvec single_short_preamble_frame();
  [[nodiscard]] static dsp::cvec single_long_preamble_frame();

  [[nodiscard]] const TxConfig& config() const noexcept { return config_; }
  void set_rate(Rate rate) noexcept { config_.rate = rate; }

 private:
  TxConfig config_;
};

}  // namespace rjf::phy80211
