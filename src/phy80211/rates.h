// 802.11a/g rate-dependent parameters (standard Table 17-3).
#pragma once

#include <cstdint>
#include <optional>

#include "phy80211/constellation.h"
#include "phy80211/convolutional.h"

namespace rjf::phy80211 {

enum class Rate : std::uint8_t {
  kMbps6,
  kMbps9,
  kMbps12,
  kMbps18,
  kMbps24,
  kMbps36,
  kMbps48,
  kMbps54,
};

struct RateParams {
  Rate rate;
  double mbps;            // nominal data rate
  Modulation modulation;
  CodeRate code_rate;
  unsigned n_bpsc;        // coded bits per subcarrier
  unsigned n_cbps;        // coded bits per OFDM symbol
  unsigned n_dbps;        // data bits per OFDM symbol
  std::uint8_t signal_rate_bits;  // 4-bit RATE field value
};

[[nodiscard]] const RateParams& rate_params(Rate rate) noexcept;

/// Look up a rate from the 4-bit SIGNAL RATE field; nullopt if invalid.
[[nodiscard]] std::optional<Rate> rate_from_signal_bits(std::uint8_t bits) noexcept;

/// All eight rates in ascending order (for ARF and sweeps).
[[nodiscard]] std::span<const Rate> all_rates() noexcept;

/// Number of DATA OFDM symbols for a PSDU of `psdu_bytes` at `rate`
/// (16 SERVICE bits + 8*bytes + 6 tail bits, padded to a symbol boundary).
[[nodiscard]] std::size_t num_data_symbols(Rate rate, std::size_t psdu_bytes) noexcept;

/// Total frame airtime in seconds at 20 MSPS (preamble + SIGNAL + DATA).
[[nodiscard]] double frame_duration_s(Rate rate, std::size_t psdu_bytes) noexcept;

}  // namespace rjf::phy80211
