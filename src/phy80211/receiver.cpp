#include "phy80211/receiver.h"

#include <array>
#include <cmath>

#include "dsp/fft.h"
#include "phy80211/constellation.h"
#include "phy80211/interleaver.h"
#include "phy80211/ofdm.h"
#include "phy80211/preamble.h"
#include "phy80211/scrambler.h"

namespace rjf::phy80211 {
namespace {

constexpr std::size_t kNominalLtsStart = 192;  // short(160) + GI2(32)
constexpr std::size_t kNominalDataStart = 320;

// Correlation magnitude of `x[offset..offset+64)` against the LTS.
double lts_metric(std::span<const dsp::cfloat> x, std::size_t offset,
                  const dsp::cvec& lts) {
  dsp::cfloat acc{};
  for (std::size_t k = 0; k < kLongSymbolLen; ++k)
    acc += x[offset + k] * std::conj(lts[k]);
  return std::abs(acc);
}

}  // namespace

RxResult Receiver::receive(std::span<const dsp::cfloat> capture) const {
  RxResult result;
  if (capture.size() < kNominalDataStart + kSymbolLen + sync_search_)
    return result;

  // -- Fine timing: search for the first LTS copy around its nominal spot.
  static const dsp::cvec kLtsTime = long_training_symbol();
  const auto start_lo =
      static_cast<long>(kNominalLtsStart) - static_cast<long>(sync_search_);
  long best_offset = static_cast<long>(kNominalLtsStart);
  double best_metric = -1.0;
  for (long o = start_lo;
       o <= static_cast<long>(kNominalLtsStart + sync_search_); ++o) {
    if (o < 0) continue;
    const double m = lts_metric(capture, static_cast<std::size_t>(o), kLtsTime);
    if (m > best_metric) {
      best_metric = m;
      best_offset = o;
    }
  }
  // Require the correlation to clearly beat the average signal level.
  double capture_power = 0.0;
  for (std::size_t k = 0; k < kNominalDataStart; ++k)
    capture_power += std::norm(capture[k]);
  capture_power /= static_cast<double>(kNominalDataStart);
  if (capture_power <= 0.0 ||
      best_metric < 0.3 * kLongSymbolLen * std::sqrt(capture_power))
    return result;
  result.synchronized = true;

  const auto lts0 = static_cast<std::size_t>(best_offset);
  const std::size_t data_start = lts0 + 2 * kLongSymbolLen;
  const float gain = static_cast<float>(kFftSize / std::sqrt(52.0));

  // -- Channel estimate: average the two LTS copies, compare against L_k.
  dsp::cvec lts_avg(kFftSize);
  for (std::size_t k = 0; k < kFftSize; ++k)
    lts_avg[k] =
        (capture[lts0 + k] + capture[lts0 + kLongSymbolLen + k]) * 0.5f / gain;
  dsp::fft(lts_avg);
  const dsp::cvec lts_ref = lts_frequency_domain();
  dsp::cvec channel(kFftSize, dsp::cfloat{1.0f, 0.0f});
  for (std::size_t bin = 0; bin < kFftSize; ++bin)
    if (std::norm(lts_ref[bin]) > 0.5f) channel[bin] = lts_avg[bin] / lts_ref[bin];

  // One equaliser for the whole frame: SIGNAL and every DATA symbol go
  // through the same channel estimate, so the zero-forcing reciprocals
  // are computed once instead of per symbol.
  const SymbolDemodulator demod(channel);
  std::array<dsp::cfloat, kNumDataCarriers> data48;

  // -- SIGNAL symbol.
  if (capture.size() < data_start + kSymbolLen) return result;
  demod.run(capture.subspan(data_start, kSymbolLen), 0, data48.data());
  const Bits sig_bits_raw = demap_symbols(data48, Modulation::kBpsk);
  const Bits sig_deinter = deinterleave(sig_bits_raw, 48, 1);
  const Bits sig_decoded = decode_at_rate(sig_deinter, CodeRate::kHalf, 24);
  const auto signal = decode_signal(sig_decoded);
  if (!signal) return result;
  result.signal_valid = true;
  result.signal = signal;

  // -- DATA symbols.
  const auto& p = rate_params(signal->rate);
  const std::size_t n_sym = num_data_symbols(signal->rate, signal->length);
  const std::size_t needed = data_start + kSymbolLen * (1 + n_sym);
  if (capture.size() < needed) {
    result.signal_valid = false;  // truncated capture
    return result;
  }

  // Demap each symbol straight into its deinterleaved slot of one
  // whole-frame buffer: the block interleaver works symbol-by-symbol, so
  // scatter-writing each demapped bit through the inverse permutation is
  // identical to deinterleaving per symbol and concatenating, without the
  // separate gather pass or per-symbol allocations.
  const std::size_t n_data_bits = n_sym * p.n_dbps;
  const std::uint16_t* scatter = deinterleave_scatter(p.n_cbps, p.n_bpsc);
  Bits scrambled;
  if (soft_) {
    std::vector<float> coded(n_sym * p.n_cbps);
    for (std::size_t s = 0; s < n_sym; ++s) {
      const std::size_t at = data_start + kSymbolLen * (1 + s);
      demod.run(capture.subspan(at, kSymbolLen), s + 1, data48.data());
      if (scatter) {
        demap_soft_scatter(data48, p.modulation, 1.0f, scatter,
                           coded.data() + s * p.n_cbps);
      } else {
        std::vector<float> raw(p.n_cbps);
        demap_soft_into(data48, p.modulation, 1.0f, raw.data());
        const auto deinter = deinterleave_soft(raw, p.n_cbps, p.n_bpsc);
        std::copy(deinter.begin(), deinter.end(),
                  coded.begin() + static_cast<std::ptrdiff_t>(s * p.n_cbps));
      }
    }
    scrambled = decode_at_rate_soft(coded, p.code_rate, n_data_bits);
  } else {
    Bits coded(n_sym * p.n_cbps);
    for (std::size_t s = 0; s < n_sym; ++s) {
      const std::size_t at = data_start + kSymbolLen * (1 + s);
      demod.run(capture.subspan(at, kSymbolLen), s + 1, data48.data());
      if (scatter) {
        demap_symbols_scatter(data48, p.modulation, scatter,
                              coded.data() + s * p.n_cbps);
      } else {
        Bits raw(p.n_cbps);
        demap_symbols_into(data48, p.modulation, raw.data());
        const Bits deinter = deinterleave(raw, p.n_cbps, p.n_bpsc);
        std::copy(deinter.begin(), deinter.end(),
                  coded.begin() + static_cast<std::ptrdiff_t>(s * p.n_cbps));
      }
    }
    scrambled = decode_at_rate(coded, p.code_rate, n_data_bits);
  }

  // -- Descramble: the 7 scrambler-init SERVICE bits were transmitted as
  // zeros, so the received values are the scrambler sequence itself.
  Scrambler descrambler(recover_scrambler_state(
      std::span<const std::uint8_t>(scrambled.data(), 7)));
  Bits descrambled(scrambled.size());
  for (std::size_t k = 0; k < 7; ++k) descrambled[k] = 0;
  for (std::size_t k = 7; k < scrambled.size(); ++k)
    descrambled[k] =
        static_cast<std::uint8_t>((scrambled[k] ^ descrambler.next_bit()) & 1u);

  const std::size_t psdu_bits = static_cast<std::size_t>(signal->length) * 8;
  if (descrambled.size() < 16 + psdu_bits) return result;
  result.psdu = bytes_from_bits(
      std::span<const std::uint8_t>(descrambled.data() + 16, psdu_bits));
  return result;
}

}  // namespace rjf::phy80211
