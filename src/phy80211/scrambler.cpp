#include "phy80211/scrambler.h"

namespace rjf::phy80211 {

std::uint8_t Scrambler::next_bit() noexcept {
  // Feedback = x^7 xor x^4 (bits 6 and 3 of the state register).
  const std::uint8_t fb =
      static_cast<std::uint8_t>(((state_ >> 6) ^ (state_ >> 3)) & 1u);
  state_ = static_cast<std::uint8_t>(((state_ << 1) | fb) & 0x7F);
  return fb;
}

Bits Scrambler::process(std::span<const std::uint8_t> bits) {
  Bits out(bits.size());
  for (std::size_t k = 0; k < bits.size(); ++k)
    out[k] = static_cast<std::uint8_t>((bits[k] ^ next_bit()) & 1u);
  return out;
}

std::uint8_t recover_scrambler_state(std::span<const std::uint8_t> first7) {
  // The descrambler state after shifting in 7 sequence bits equals those
  // bits in order: bit k lands at register position 6-k.
  std::uint8_t state = 0;
  for (std::size_t k = 0; k < 7 && k < first7.size(); ++k)
    state = static_cast<std::uint8_t>((state << 1) | (first7[k] & 1u));
  return state;
}

Bits pilot_polarity_sequence() {
  Scrambler s(0x7F);
  Bits seq(127);
  for (auto& bit : seq) bit = s.next_bit();
  return seq;
}

}  // namespace rjf::phy80211
