// Gray-coded constellation mapping for 802.11a/g: BPSK, QPSK, 16-QAM,
// 64-QAM, with the standard K_mod normalisation so every constellation has
// unit mean power.
#pragma once

#include "dsp/types.h"
#include "phy80211/bits.h"

namespace rjf::phy80211 {

enum class Modulation { kBpsk, kQpsk, kQam16, kQam64 };

/// Coded bits per subcarrier for the modulation.
[[nodiscard]] unsigned bits_per_symbol(Modulation mod) noexcept;

/// Map bits (length divisible by bits_per_symbol) to unit-power symbols.
[[nodiscard]] dsp::cvec map_bits(std::span<const std::uint8_t> bits, Modulation mod);

/// Hard-decision demap back to bits.
[[nodiscard]] Bits demap_symbols(std::span<const dsp::cfloat> symbols, Modulation mod);

/// Soft demap: max-log LLR per coded bit, positive = bit 1 more likely.
/// `noise_var` scales the confidence; any positive value yields correct
/// Viterbi behaviour since only relative magnitudes matter.
[[nodiscard]] std::vector<float> demap_soft(std::span<const dsp::cfloat> symbols,
                                            Modulation mod,
                                            float noise_var = 1.0f);

}  // namespace rjf::phy80211
