// Gray-coded constellation mapping for 802.11a/g: BPSK, QPSK, 16-QAM,
// 64-QAM, with the standard K_mod normalisation so every constellation has
// unit mean power.
#pragma once

#include "dsp/types.h"
#include "phy80211/bits.h"

namespace rjf::phy80211 {

enum class Modulation { kBpsk, kQpsk, kQam16, kQam64 };

/// Coded bits per subcarrier for the modulation.
[[nodiscard]] unsigned bits_per_symbol(Modulation mod) noexcept;

/// Map bits (length divisible by bits_per_symbol) to unit-power symbols.
[[nodiscard]] dsp::cvec map_bits(std::span<const std::uint8_t> bits, Modulation mod);

/// Hard-decision demap back to bits.
[[nodiscard]] Bits demap_symbols(std::span<const dsp::cfloat> symbols, Modulation mod);

/// Allocation-free hard demap into a caller buffer of
/// `symbols.size() * bits_per_symbol(mod)` bytes.  Whole-frame receive
/// paths demap every symbol into one preallocated buffer and run a single
/// deinterleave over it instead of concatenating per-symbol vectors.
void demap_symbols_into(std::span<const dsp::cfloat> symbols, Modulation mod,
                        std::uint8_t* out);

/// Soft demap: max-log LLR per coded bit, positive = bit 1 more likely.
/// `noise_var` scales the confidence; any positive value yields correct
/// Viterbi behaviour since only relative magnitudes matter.
[[nodiscard]] std::vector<float> demap_soft(std::span<const dsp::cfloat> symbols,
                                            Modulation mod,
                                            float noise_var = 1.0f);

/// Allocation-free soft demap into a caller buffer of
/// `symbols.size() * bits_per_symbol(mod)` floats.
void demap_soft_into(std::span<const dsp::cfloat> symbols, Modulation mod,
                     float noise_var, float* out);

/// Hard demap with a destination permutation: produced bit j is written
/// to `out[scatter[j]]` instead of `out[j]`.  With the deinterleaver's
/// scatter table this fuses demap + deinterleave of one symbol block into
/// a single pass.  `scatter` must cover symbols.size()*bits_per_symbol(mod)
/// entries forming a permutation of that range.
void demap_symbols_scatter(std::span<const dsp::cfloat> symbols, Modulation mod,
                           const std::uint16_t* scatter, std::uint8_t* out);

/// Soft variant of demap_symbols_scatter().
void demap_soft_scatter(std::span<const dsp::cfloat> symbols, Modulation mod,
                        float noise_var, const std::uint16_t* scatter,
                        float* out);

}  // namespace rjf::phy80211
