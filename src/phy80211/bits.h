// Bit-vector helpers shared by the 802.11 encode/decode pipeline.
//
// 802.11 serialises octets LSB-first; all bit vectors in this PHY use one
// std::uint8_t per bit (value 0 or 1) for clarity over packing tricks.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace rjf::phy80211 {

using Bits = std::vector<std::uint8_t>;

/// Octets to bits, LSB of each octet first (802.11 transmit order).
[[nodiscard]] Bits bits_from_bytes(std::span<const std::uint8_t> bytes);

/// Bits back to octets; `bits.size()` must be a multiple of 8.
[[nodiscard]] std::vector<std::uint8_t> bytes_from_bits(std::span<const std::uint8_t> bits);

/// Append `value`'s lowest `count` bits, LSB first.
void append_uint(Bits& bits, std::uint32_t value, unsigned count);

/// Read `count` bits LSB-first starting at `offset`.
[[nodiscard]] std::uint32_t read_uint(std::span<const std::uint8_t> bits,
                                      std::size_t offset, unsigned count);

}  // namespace rjf::phy80211
