#include "phy80211/rates.h"

#include <array>

#include "phy80211/ofdm.h"

namespace rjf::phy80211 {
namespace {

constexpr std::array<RateParams, 8> kTable = {{
    {Rate::kMbps6, 6.0, Modulation::kBpsk, CodeRate::kHalf, 1, 48, 24, 0b1101},
    {Rate::kMbps9, 9.0, Modulation::kBpsk, CodeRate::kThreeQuarters, 1, 48, 36,
     0b1111},
    {Rate::kMbps12, 12.0, Modulation::kQpsk, CodeRate::kHalf, 2, 96, 48, 0b0101},
    {Rate::kMbps18, 18.0, Modulation::kQpsk, CodeRate::kThreeQuarters, 2, 96, 72,
     0b0111},
    {Rate::kMbps24, 24.0, Modulation::kQam16, CodeRate::kHalf, 4, 192, 96,
     0b1001},
    {Rate::kMbps36, 36.0, Modulation::kQam16, CodeRate::kThreeQuarters, 4, 192,
     144, 0b1011},
    {Rate::kMbps48, 48.0, Modulation::kQam64, CodeRate::kTwoThirds, 6, 288, 192,
     0b0001},
    {Rate::kMbps54, 54.0, Modulation::kQam64, CodeRate::kThreeQuarters, 6, 288,
     216, 0b0011},
}};

constexpr std::array<Rate, 8> kAll = {
    Rate::kMbps6,  Rate::kMbps9,  Rate::kMbps12, Rate::kMbps18,
    Rate::kMbps24, Rate::kMbps36, Rate::kMbps48, Rate::kMbps54};

}  // namespace

const RateParams& rate_params(Rate rate) noexcept {
  return kTable[static_cast<std::size_t>(rate)];
}

std::optional<Rate> rate_from_signal_bits(std::uint8_t bits) noexcept {
  for (const auto& p : kTable)
    if (p.signal_rate_bits == bits) return p.rate;
  return std::nullopt;
}

std::span<const Rate> all_rates() noexcept { return kAll; }

std::size_t num_data_symbols(Rate rate, std::size_t psdu_bytes) noexcept {
  const auto& p = rate_params(rate);
  const std::size_t n_bits = 16 + 8 * psdu_bytes + 6;
  return (n_bits + p.n_dbps - 1) / p.n_dbps;
}

double frame_duration_s(Rate rate, std::size_t psdu_bytes) noexcept {
  const std::size_t preamble_and_signal = 320 + kSymbolLen;
  const std::size_t data =
      num_data_symbols(rate, psdu_bytes) * kSymbolLen;
  return static_cast<double>(preamble_and_signal + data) / kSampleRateHz;
}

}  // namespace rjf::phy80211
