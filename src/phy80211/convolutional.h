// 802.11 convolutional code: K=7, rate 1/2 mother code with generators
// g0 = 133 (octal) and g1 = 171 (octal), punctured to 2/3 and 3/4 for the
// higher data rates. Decoding is hard-decision Viterbi with erasure-aware
// metrics so punctured positions contribute nothing to the path metric.
#pragma once

#include <cstdint>

#include "phy80211/bits.h"

namespace rjf::phy80211 {

enum class CodeRate { kHalf, kTwoThirds, kThreeQuarters };

/// Numerator/denominator of the code rate (e.g. 3/4 -> {3, 4}).
struct RateFraction {
  unsigned num;
  unsigned den;
};
[[nodiscard]] RateFraction rate_fraction(CodeRate rate) noexcept;

/// Encode with the rate-1/2 mother code (output a0 b0 a1 b1 ...).
/// The caller is responsible for appending the 6 tail zeros beforehand.
[[nodiscard]] Bits convolutional_encode(std::span<const std::uint8_t> data);

/// Puncture a mother-coded stream to the requested rate.
[[nodiscard]] Bits puncture(std::span<const std::uint8_t> coded, CodeRate rate);

/// Reinsert erasure marks (value 2) at punctured positions so the stream is
/// back at the mother-code rate. `n_mother` is the mother-coded length.
[[nodiscard]] Bits depuncture(std::span<const std::uint8_t> punctured,
                              CodeRate rate, std::size_t n_mother);

/// Hard-decision Viterbi decode of a (possibly erasure-marked) mother-rate
/// stream. Input length must be even; returns n/2 decoded bits including
/// the tail. Erasures (value 2) incur zero branch metric. Dispatches to the
/// lane-parallel SIMD ACS kernel when available; decoded bits are
/// bit-identical to the reference either way.
[[nodiscard]] Bits viterbi_decode(std::span<const std::uint8_t> coded);

/// Scalar reference decoder (the semantic authority the SIMD kernels are
/// tested against). Exposed for equivalence tests and benchmarks.
[[nodiscard]] Bits viterbi_decode_reference(std::span<const std::uint8_t> coded);

/// Convenience: encode + puncture.
[[nodiscard]] Bits encode_at_rate(std::span<const std::uint8_t> data, CodeRate rate);

/// Convenience: depuncture + decode. `n_data_bits` is the expected number
/// of decoded bits (mother length = 2 * n_data_bits).
[[nodiscard]] Bits decode_at_rate(std::span<const std::uint8_t> punctured,
                                  CodeRate rate, std::size_t n_data_bits);

// ---- Soft-decision path ----------------------------------------------------

/// Reinsert zero-LLR positions at punctured locations.
[[nodiscard]] std::vector<float> depuncture_soft(std::span<const float> llrs,
                                                 CodeRate rate,
                                                 std::size_t n_mother);

/// Soft-decision Viterbi over mother-rate LLRs (positive = bit 1). Erasures
/// are zero LLRs and contribute nothing. Returns n/2 decoded bits. SIMD
/// dispatch as for viterbi_decode; the vector kernel replicates the
/// reference's float arithmetic exactly.
[[nodiscard]] Bits viterbi_decode_soft(std::span<const float> llrs);

/// Scalar reference soft decoder (see viterbi_decode_reference).
[[nodiscard]] Bits viterbi_decode_soft_reference(std::span<const float> llrs);

/// Convenience: depuncture_soft + viterbi_decode_soft.
[[nodiscard]] Bits decode_at_rate_soft(std::span<const float> llrs,
                                       CodeRate rate, std::size_t n_data_bits);

}  // namespace rjf::phy80211
