#include "phy80211/bits.h"

namespace rjf::phy80211 {

Bits bits_from_bytes(std::span<const std::uint8_t> bytes) {
  Bits bits;
  bits.reserve(bytes.size() * 8);
  for (const std::uint8_t byte : bytes)
    for (unsigned b = 0; b < 8; ++b) bits.push_back((byte >> b) & 1u);
  return bits;
}

std::vector<std::uint8_t> bytes_from_bits(std::span<const std::uint8_t> bits) {
  std::vector<std::uint8_t> bytes(bits.size() / 8, 0);
  for (std::size_t k = 0; k < bytes.size() * 8; ++k)
    bytes[k / 8] |= static_cast<std::uint8_t>((bits[k] & 1u) << (k % 8));
  return bytes;
}

void append_uint(Bits& bits, std::uint32_t value, unsigned count) {
  for (unsigned b = 0; b < count; ++b)
    bits.push_back(static_cast<std::uint8_t>((value >> b) & 1u));
}

std::uint32_t read_uint(std::span<const std::uint8_t> bits, std::size_t offset,
                        unsigned count) {
  std::uint32_t value = 0;
  for (unsigned b = 0; b < count && offset + b < bits.size(); ++b)
    value |= static_cast<std::uint32_t>(bits[offset + b] & 1u) << b;
  return value;
}

}  // namespace rjf::phy80211
