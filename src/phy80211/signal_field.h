// PLCP SIGNAL field: 24 bits (RATE[4], reserved, LENGTH[12], even parity,
// 6 tail zeros), always transmitted as one BPSK rate-1/2 OFDM symbol.
#pragma once

#include <cstdint>
#include <optional>

#include "phy80211/bits.h"
#include "phy80211/rates.h"

namespace rjf::phy80211 {

struct SignalField {
  Rate rate = Rate::kMbps6;
  std::uint16_t length = 0;  // PSDU length in octets (1..4095)
};

/// Encode to the 24 unscrambled SIGNAL bits.
[[nodiscard]] Bits encode_signal(const SignalField& field);

/// Decode 24 bits; nullopt if the parity fails, the rate is invalid, or the
/// reserved bit is set.
[[nodiscard]] std::optional<SignalField> decode_signal(
    std::span<const std::uint8_t> bits24);

}  // namespace rjf::phy80211
