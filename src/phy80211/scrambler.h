// 802.11 frame-synchronous scrambler, generator S(x) = x^7 + x^4 + 1.
#pragma once

#include <cstdint>

#include "phy80211/bits.h"

namespace rjf::phy80211 {

class Scrambler {
 public:
  /// `state` is the 7-bit initial state; must be nonzero for scrambling
  /// (an all-zero state produces the all-zero sequence).
  explicit Scrambler(std::uint8_t state = 0x5D) noexcept : state_(state & 0x7F) {}

  /// Next scrambler sequence bit.
  [[nodiscard]] std::uint8_t next_bit() noexcept;

  /// XOR the sequence onto a bit vector (scramble == descramble).
  [[nodiscard]] Bits process(std::span<const std::uint8_t> bits);

  [[nodiscard]] std::uint8_t state() const noexcept { return state_; }

 private:
  std::uint8_t state_;
};

/// Recover the transmitter's initial scrambler state from the first 7
/// scrambled bits of a known-zero field (the SERVICE field's scrambler-init
/// bits are transmitted as zeros, so the received bits ARE the sequence).
[[nodiscard]] std::uint8_t recover_scrambler_state(std::span<const std::uint8_t> first7);

/// The 127-bit scrambler sequence for the all-ones state — this is also the
/// 802.11 pilot polarity sequence p_0 .. p_126.
[[nodiscard]] Bits pilot_polarity_sequence();

}  // namespace rjf::phy80211
