// 802.11a/g PLCP preamble: 10 short training symbols (8 µs) followed by two
// long training symbols behind a double-length guard interval (8 µs).
//
// These are the waveforms the paper's cross-correlator templates are built
// from: the short preamble is a 16-sample code repeated 10 times; the long
// preamble is a 64-sample code repeated twice. All waveforms are generated
// at the standard 20 MSPS — the 20 vs 25 MSPS mismatch at the jammer is
// then produced by the resampling stage, exactly as in the paper.
#pragma once

#include "dsp/types.h"

namespace rjf::phy80211 {

inline constexpr std::size_t kShortSymbolLen = 16;   // 0.8 us at 20 MSPS
inline constexpr std::size_t kShortPreambleLen = 160; // 10 repetitions
inline constexpr std::size_t kLongSymbolLen = 64;    // 3.2 us
inline constexpr std::size_t kLongPreambleLen = 160; // 32 GI + 2 x 64

/// One period (16 samples) of the short training sequence, unit mean power.
[[nodiscard]] dsp::cvec short_training_symbol();

/// Full 160-sample short preamble.
[[nodiscard]] dsp::cvec short_preamble();

/// One period (64 samples) of the long training sequence, unit mean power.
[[nodiscard]] dsp::cvec long_training_symbol();

/// Full 160-sample long preamble (GI2 + LTS + LTS).
[[nodiscard]] dsp::cvec long_preamble();

/// Frequency-domain LTS values per FFT bin (+1/-1 on the 52 active bins),
/// used by the receiver for channel estimation.
[[nodiscard]] dsp::cvec lts_frequency_domain();

/// Complete 320-sample PLCP preamble (short + long).
[[nodiscard]] dsp::cvec plcp_preamble();

}  // namespace rjf::phy80211
