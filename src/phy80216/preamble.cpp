#include "phy80216/preamble.h"

#include "dsp/db.h"
#include "dsp/fft.h"
#include "phy80216/pn_sequence.h"

namespace rjf::phy80216 {
namespace {

std::size_t bin_for_used_index(std::size_t used_index) {
  // Used subcarriers run -426..+425 around DC (852 total incl. DC slot);
  // logical used_index 0 maps to -426. DC itself is nulled.
  const long carrier = static_cast<long>(used_index) - 426;
  return carrier >= 0 ? static_cast<std::size_t>(carrier)
                      : static_cast<std::size_t>(kFftSize + carrier);
}

}  // namespace

dsp::cvec preamble_useful_part(const PreambleConfig& config) {
  const std::vector<int> pn = preamble_pn(config.cell_id, config.segment);
  dsp::cvec freq(kFftSize, dsp::cfloat{});
  std::size_t pn_idx = 0;
  // Every 3rd used subcarrier starting at the segment offset.
  for (std::size_t u = config.segment; u < 852 && pn_idx < pn.size(); u += 3) {
    const std::size_t bin = bin_for_used_index(u);
    if (bin == 0) continue;  // never modulate DC
    freq[bin] = dsp::cfloat{static_cast<float>(pn[pn_idx++]), 0.0f};
  }
  dsp::cvec time = dsp::ifft_copy(freq);
  dsp::set_mean_power(std::span<dsp::cfloat>(time), 1.0);
  return time;
}

dsp::cvec preamble_symbol(const PreambleConfig& config) {
  const dsp::cvec useful = preamble_useful_part(config);
  dsp::cvec out;
  out.reserve(kPreambleSymbolLen);
  out.insert(out.end(), useful.end() - kCpLen, useful.end());
  out.insert(out.end(), useful.begin(), useful.end());
  return out;
}

}  // namespace rjf::phy80216
