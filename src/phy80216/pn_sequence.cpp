#include "phy80216/pn_sequence.h"

#include <cmath>

namespace rjf::phy80216 {

std::vector<int> preamble_pn(unsigned cell_id, unsigned segment) {
  // 15-bit Fibonacci LFSR (x^15 + x^14 + 1, m-sequence of period 32767)
  // seeded from (cell_id, segment) so each carrier set gets a distinct
  // phase of the sequence plus a segment-dependent scramble tap.
  std::uint16_t lfsr = static_cast<std::uint16_t>(
      0x3A5Du ^ (cell_id * 2749u + segment * 131u + 1u));
  if ((lfsr & 0x7FFF) == 0) lfsr = 1;
  std::vector<int> seq(kPnLength);
  for (auto& v : seq) {
    const unsigned bit = ((lfsr >> 14) ^ (lfsr >> 13)) & 1u;
    lfsr = static_cast<std::uint16_t>(((lfsr << 1) | bit) & 0x7FFF);
    v = bit ? 1 : -1;
  }
  return seq;
}

double max_cross_correlation(const std::vector<int>& a,
                             const std::vector<int>& b) {
  if (a.empty() || a.size() != b.size()) return 0.0;
  const std::size_t n = a.size();
  double peak = 0.0;
  for (std::size_t shift = 0; shift < n; ++shift) {
    long acc = 0;
    for (std::size_t k = 0; k < n; ++k) acc += a[k] * b[(k + shift) % n];
    peak = std::max(peak, std::abs(static_cast<double>(acc)));
  }
  return peak / static_cast<double>(n);
}

}  // namespace rjf::phy80216
