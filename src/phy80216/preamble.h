// 802.16e OFDMA downlink preamble symbol.
//
// 1024-point FFT, 86 guard subcarriers on each side of the spectrum, and
// three preamble carrier sets: segment s modulates every 3rd used
// subcarrier (offset s) with a BPSK PN sequence of 284 values. Occupying
// only every 3rd bin makes the time waveform 3-fold quasi-periodic — the
// "orthogonal code ... repeats itself 3 times within the preamble time"
// that the paper's 64-sample correlator can only see the first 2.56 us of.
#pragma once

#include "dsp/types.h"

namespace rjf::phy80216 {

inline constexpr std::size_t kFftSize = 1024;
inline constexpr std::size_t kGuardEachSide = 86;
inline constexpr std::size_t kCpLen = kFftSize / 8;  // CP ratio 1/8
inline constexpr std::size_t kPreambleSymbolLen = kFftSize + kCpLen;  // 1152
inline constexpr double kSampleRateHz = 11.2e6;  // 10 MHz BW, n = 28/25

struct PreambleConfig {
  unsigned cell_id = 1;   // paper experiment: Cell ID 1
  unsigned segment = 0;   // paper experiment: Segment 0
};

/// Time-domain preamble symbol (CP + useful part), unit mean power over the
/// useful part.
[[nodiscard]] dsp::cvec preamble_symbol(const PreambleConfig& config = {});

/// The useful (post-CP) part only — the correlator template source.
[[nodiscard]] dsp::cvec preamble_useful_part(const PreambleConfig& config = {});

}  // namespace rjf::phy80216
