// Preamble PN sequences for the 802.16e OFDMA downlink.
//
// The standard defines one 284-value binary sequence per preamble carrier
// set, indexed by (IDcell, segment). Those tables are reproduced here by a
// deterministic LFSR generator parameterised by the same pair — a
// documented substitution (DESIGN.md §1): the jamming experiments only
// exercise the sequences' length and low cross/auto-correlation, which any
// full-period LFSR sequence provides, not the exact standard table values.
#pragma once

#include <cstdint>
#include <vector>

namespace rjf::phy80216 {

inline constexpr std::size_t kPnLength = 284;

/// 284 values in {-1, +1} for the given cell/segment. Deterministic:
/// the same (cell, segment) always produces the same sequence.
[[nodiscard]] std::vector<int> preamble_pn(unsigned cell_id, unsigned segment);

/// Normalised periodic cross-correlation peak between two sequences
/// (1.0 = identical alignment exists). Used by tests to check that
/// different carrier sets stay distinguishable.
[[nodiscard]] double max_cross_correlation(const std::vector<int>& a,
                                           const std::vector<int>& b);

}  // namespace rjf::phy80216
