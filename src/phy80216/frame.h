// 802.16e TDD downlink frame builder (Airspan Air4G base-station model).
//
// The paper drives its WiMAX experiment with a macro-cell base station
// continuously broadcasting TDD downlink frames: a preamble symbol followed
// by FCH/DL-MAP and data bursts, then the TTG/uplink gap. The paper had no
// WiMAX receiver, so downstream processing is observation-only (Fig. 12);
// the data bursts here are therefore QPSK OFDMA symbols carrying seeded
// random payload — spectrally correct without a full DL-MAP parser.
#pragma once

#include <cstdint>

#include "dsp/types.h"
#include "phy80216/preamble.h"

namespace rjf::phy80216 {

struct FrameConfig {
  PreambleConfig preamble;
  std::size_t num_dl_symbols = 26;   // DL data symbols after the preamble
  double frame_duration_s = 5e-3;    // TDD frame period
  std::uint64_t payload_seed = 1;
};

/// Samples of downlink airtime inside one frame (preamble + DL symbols).
[[nodiscard]] std::size_t dl_active_samples(const FrameConfig& config) noexcept;

/// Samples in one full TDD frame period at kSampleRateHz.
[[nodiscard]] std::size_t frame_period_samples(const FrameConfig& config) noexcept;

/// Build the downlink portion of one frame (unit mean power).
[[nodiscard]] dsp::cvec build_downlink(const FrameConfig& config);

/// Continuous broadcast: `num_frames` frames, silence in the TDD gaps —
/// what the jammer's receive antenna sees from the base station.
[[nodiscard]] dsp::cvec broadcast(const FrameConfig& config, std::size_t num_frames);

}  // namespace rjf::phy80216
