#include "phy80216/frame.h"

#include <cmath>

#include "dsp/db.h"
#include "dsp/fft.h"
#include "dsp/rng.h"

namespace rjf::phy80216 {
namespace {

// One OFDMA data symbol: QPSK on all used subcarriers (PUSC detail omitted;
// the jammer experiment only needs the occupied-spectrum envelope).
dsp::cvec data_symbol(dsp::Xoshiro256& rng) {
  dsp::cvec freq(kFftSize, dsp::cfloat{});
  const float a = 1.0f / std::sqrt(2.0f);
  for (std::size_t u = 0; u < 852; ++u) {
    const long carrier = static_cast<long>(u) - 426;
    if (carrier == 0) continue;
    const std::size_t bin = carrier >= 0
                                ? static_cast<std::size_t>(carrier)
                                : static_cast<std::size_t>(kFftSize + carrier);
    const auto bits = static_cast<unsigned>(rng.next() & 3u);
    freq[bin] = dsp::cfloat{(bits & 1u) ? a : -a, (bits & 2u) ? a : -a};
  }
  dsp::cvec time = dsp::ifft_copy(freq);
  dsp::set_mean_power(std::span<dsp::cfloat>(time), 1.0);
  dsp::cvec out;
  out.reserve(kPreambleSymbolLen);
  out.insert(out.end(), time.end() - kCpLen, time.end());
  out.insert(out.end(), time.begin(), time.end());
  return out;
}

}  // namespace

std::size_t dl_active_samples(const FrameConfig& config) noexcept {
  return kPreambleSymbolLen * (1 + config.num_dl_symbols);
}

std::size_t frame_period_samples(const FrameConfig& config) noexcept {
  return static_cast<std::size_t>(
      std::llround(config.frame_duration_s * kSampleRateHz));
}

dsp::cvec build_downlink(const FrameConfig& config) {
  dsp::cvec out = preamble_symbol(config.preamble);
  dsp::Xoshiro256 rng(config.payload_seed);
  for (std::size_t s = 0; s < config.num_dl_symbols; ++s) {
    const dsp::cvec sym = data_symbol(rng);
    out.insert(out.end(), sym.begin(), sym.end());
  }
  return out;
}

dsp::cvec broadcast(const FrameConfig& config, std::size_t num_frames) {
  const std::size_t period = frame_period_samples(config);
  dsp::cvec out(period * num_frames, dsp::cfloat{});
  for (std::size_t f = 0; f < num_frames; ++f) {
    FrameConfig per_frame = config;
    per_frame.payload_seed = config.payload_seed + f;
    const dsp::cvec dl = build_downlink(per_frame);
    const std::size_t at = f * period;
    for (std::size_t k = 0; k < dl.size() && at + k < out.size(); ++k)
      out[at + k] = dl[k];
  }
  return out;
}

}  // namespace rjf::phy80216
