// IEEE 802 CRC-32, as used by the 802.11 MAC FCS.
#pragma once

#include <cstdint>
#include <span>

namespace rjf::dsp {

/// CRC-32 (poly 0x04C11DB7 reflected), init 0xFFFFFFFF, final xor 0xFFFFFFFF.
[[nodiscard]] std::uint32_t crc32(std::span<const std::uint8_t> data) noexcept;

/// Incremental interface for streaming MAC frame assembly.
class Crc32 {
 public:
  void update(std::span<const std::uint8_t> data) noexcept;
  [[nodiscard]] std::uint32_t value() const noexcept { return state_ ^ 0xFFFFFFFFu; }
  void reset() noexcept { state_ = 0xFFFFFFFFu; }

 private:
  std::uint32_t state_ = 0xFFFFFFFFu;
};

}  // namespace rjf::dsp
