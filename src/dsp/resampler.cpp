#include "dsp/resampler.h"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace rjf::dsp {
namespace {

// Kernel half-width in input samples. 8 taps per output point is plenty for
// the ~0.8 ratio conversions used here.
constexpr int kHalfWidth = 4;

float sinc_kernel(double t, double cutoff) {
  // Hann-windowed sinc, support [-kHalfWidth, kHalfWidth].
  if (std::abs(t) >= kHalfWidth) return 0.0f;
  const double x = std::numbers::pi * t;
  const double sinc = (t == 0.0) ? 1.0 : std::sin(2.0 * cutoff * x) / (2.0 * cutoff * x);
  const double window =
      0.5 * (1.0 + std::cos(std::numbers::pi * t / kHalfWidth));
  return static_cast<float>(2.0 * cutoff * sinc * window);
}

}  // namespace

Resampler::Resampler(double in_rate, double out_rate)
    : ratio_(out_rate / in_rate) {
  if (in_rate <= 0.0 || out_rate <= 0.0)
    throw std::invalid_argument("Resampler: rates must be positive");
}

cvec Resampler::resample(std::span<const cfloat> in,
                         double fractional_delay) const {
  if (in.empty()) return {};
  const auto n_in = static_cast<double>(in.size());
  const auto n_out = static_cast<std::size_t>(std::floor(n_in * ratio_));
  cvec out(n_out);
  // When decimating, lower the kernel cutoff to suppress aliasing.
  const double cutoff = 0.5 * std::min(1.0, ratio_);
  for (std::size_t m = 0; m < n_out; ++m) {
    const double center = static_cast<double>(m) / ratio_ + fractional_delay;
    const auto lo = static_cast<long>(std::ceil(center)) - kHalfWidth;
    const auto hi = static_cast<long>(std::floor(center)) + kHalfWidth;
    cfloat acc{};
    for (long k = lo; k <= hi; ++k) {
      if (k < 0 || k >= static_cast<long>(in.size())) continue;
      acc += in[static_cast<std::size_t>(k)] *
             sinc_kernel(static_cast<double>(k) - center, cutoff);
    }
    out[m] = acc;
  }
  return out;
}

cvec resample(std::span<const cfloat> in, double in_rate, double out_rate) {
  return Resampler(in_rate, out_rate).resample(in);
}

}  // namespace rjf::dsp
