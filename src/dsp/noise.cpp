#include "dsp/noise.h"

namespace rjf::dsp {

NoiseSource::NoiseSource(double power, std::uint64_t seed) noexcept
    : power_(power), rng_(seed) {}

cfloat NoiseSource::sample() noexcept { return rng_.complex_gaussian(power_); }

cvec NoiseSource::block(std::size_t n) {
  cvec out(n);
  for (cfloat& s : out) s = sample();
  return out;
}

void NoiseSource::add_to(std::span<cfloat> x) noexcept {
  for (cfloat& s : x) s += sample();
}

cvec make_wgn(std::size_t n, double power, std::uint64_t seed) {
  NoiseSource src(power, seed);
  return src.block(n);
}

}  // namespace rjf::dsp
