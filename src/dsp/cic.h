// Cascaded integrator-comb (CIC) decimator and interpolator — the actual
// first stage of the USRP N210's DDC/DUC chains (Hogenauer structure, no
// multipliers). N stages, differential delay M = 1, decimation/
// interpolation factor R. DC gain is (R*M)^N; process() compensates it so
// chained filters stay at unit scale.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "dsp/types.h"

namespace rjf::dsp {

class CicDecimator {
 public:
  /// `stages` (N) >= 1, `factor` (R) >= 1.
  CicDecimator(std::size_t factor, std::size_t stages = 4);

  [[nodiscard]] cvec process(std::span<const cfloat> in);

  [[nodiscard]] std::size_t factor() const noexcept { return factor_; }
  [[nodiscard]] std::size_t stages() const noexcept { return stages_; }
  void reset() noexcept;

 private:
  std::size_t factor_;
  std::size_t stages_;
  double gain_;
  std::vector<std::uint64_t> acc_i_;  // wrapping integrator registers (I,Q)
  std::vector<std::uint64_t> acc_c_;  // comb delay registers (I,Q)
  std::size_t phase_ = 0;
};

class CicInterpolator {
 public:
  CicInterpolator(std::size_t factor, std::size_t stages = 4);

  [[nodiscard]] cvec process(std::span<const cfloat> in);

  [[nodiscard]] std::size_t factor() const noexcept { return factor_; }
  void reset() noexcept;

 private:
  std::size_t factor_;
  std::size_t stages_;
  double gain_;
  std::vector<std::uint64_t> acc_i_;
  std::vector<std::uint64_t> acc_c_;
};

}  // namespace rjf::dsp
