#include "dsp/fir.h"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace rjf::dsp {

FirFilter::FirFilter(std::vector<float> taps) : taps_(std::move(taps)) {
  if (taps_.empty()) throw std::invalid_argument("FirFilter: empty taps");
  history_.assign(taps_.size(), cfloat{});
}

cfloat FirFilter::process(cfloat in) noexcept {
  history_[pos_] = in;
  cfloat acc{};
  std::size_t idx = pos_;
  for (const float tap : taps_) {
    acc += history_[idx] * tap;
    idx = (idx == 0) ? history_.size() - 1 : idx - 1;
  }
  pos_ = (pos_ + 1) % history_.size();
  return acc;
}

cvec FirFilter::process_block(std::span<const cfloat> in) {
  cvec out(in.size());
  for (std::size_t n = 0; n < in.size(); ++n) out[n] = process(in[n]);
  return out;
}

void FirFilter::reset() noexcept {
  std::fill(history_.begin(), history_.end(), cfloat{});
  pos_ = 0;
}

std::vector<float> design_lowpass(double cutoff, std::size_t num_taps) {
  if (cutoff <= 0.0 || cutoff >= 0.5)
    throw std::invalid_argument("design_lowpass: cutoff out of (0, 0.5)");
  if (num_taps % 2 == 0) ++num_taps;
  std::vector<float> taps(num_taps);
  const double mid = static_cast<double>(num_taps - 1) / 2.0;
  double sum = 0.0;
  for (std::size_t n = 0; n < num_taps; ++n) {
    const double t = static_cast<double>(n) - mid;
    const double sinc =
        (t == 0.0) ? 2.0 * cutoff
                   : std::sin(2.0 * std::numbers::pi * cutoff * t) /
                         (std::numbers::pi * t);
    const double window =
        0.54 - 0.46 * std::cos(2.0 * std::numbers::pi * static_cast<double>(n) /
                               static_cast<double>(num_taps - 1));
    taps[n] = static_cast<float>(sinc * window);
    sum += taps[n];
  }
  // Normalise to unity DC gain.
  for (float& t : taps) t = static_cast<float>(t / sum);
  return taps;
}

Decimator::Decimator(std::size_t factor, std::size_t num_taps)
    : factor_(factor),
      filter_(design_lowpass(0.5 / static_cast<double>(factor == 0 ? 1 : factor),
                             num_taps)) {
  if (factor_ == 0) throw std::invalid_argument("Decimator: factor must be >= 1");
}

cvec Decimator::process_block(std::span<const cfloat> in) {
  cvec out;
  out.reserve(in.size() / factor_ + 1);
  for (const cfloat s : in) {
    const cfloat y = filter_.process(s);
    if (phase_ == 0) out.push_back(y);
    phase_ = (phase_ + 1) % factor_;
  }
  return out;
}

void Decimator::reset() noexcept {
  filter_.reset();
  phase_ = 0;
}

Interpolator::Interpolator(std::size_t factor, std::size_t num_taps)
    : factor_(factor),
      filter_(design_lowpass(0.5 / static_cast<double>(factor == 0 ? 1 : factor),
                             num_taps)) {
  if (factor_ == 0)
    throw std::invalid_argument("Interpolator: factor must be >= 1");
}

cvec Interpolator::process_block(std::span<const cfloat> in) {
  cvec out;
  out.reserve(in.size() * factor_);
  const float gain = static_cast<float>(factor_);
  for (const cfloat s : in) {
    out.push_back(filter_.process(s * gain));
    for (std::size_t k = 1; k < factor_; ++k)
      out.push_back(filter_.process(cfloat{}));
  }
  return out;
}

void Interpolator::reset() noexcept { filter_.reset(); }

}  // namespace rjf::dsp
