// Deterministic, seedable PRNG used throughout the simulation.
//
// xoshiro256++ — fast, high quality, and reproducible across platforms,
// which matters because every experiment in EXPERIMENTS.md must be
// regenerable bit-for-bit from a seed.
#pragma once

#include <cstdint>

#include "dsp/types.h"

namespace rjf::dsp {

/// Derive the seed for an independent random stream from a base seed and a
/// stream index (splitmix64 over base + index·golden-gamma). Used by the
/// sweep engine so shard/trial RNG streams depend only on logical indices —
/// never on thread scheduling — making parallel experiments reproducible
/// bit-for-bit at any worker count.
[[nodiscard]] std::uint64_t derive_seed(std::uint64_t base,
                                        std::uint64_t stream) noexcept;

class Xoshiro256 {
 public:
  explicit Xoshiro256(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept;

  /// Next raw 64-bit value.
  [[nodiscard]] std::uint64_t next() noexcept;

  /// Uniform double in [0, 1).
  [[nodiscard]] double uniform() noexcept;

  /// Uniform integer in [0, n). n must be > 0.
  [[nodiscard]] std::uint64_t uniform_int(std::uint64_t n) noexcept;

  /// Standard normal variate (Box-Muller, cached pair).
  [[nodiscard]] double gaussian() noexcept;

  /// Circularly-symmetric complex Gaussian with E[|x|^2] == variance.
  [[nodiscard]] cfloat complex_gaussian(double variance = 1.0) noexcept;

 private:
  std::uint64_t s_[4];
  double cached_ = 0.0;
  bool has_cached_ = false;
};

}  // namespace rjf::dsp
