#include "dsp/window.h"

#include <cmath>
#include <numbers>

namespace rjf::dsp {

std::vector<float> make_window(WindowType type, std::size_t n) {
  std::vector<float> w(n, 1.0f);
  if (n < 2 || type == WindowType::kRect) return w;
  const double denom = static_cast<double>(n - 1);
  for (std::size_t k = 0; k < n; ++k) {
    const double x = 2.0 * std::numbers::pi * static_cast<double>(k) / denom;
    switch (type) {
      case WindowType::kHann:
        w[k] = static_cast<float>(0.5 - 0.5 * std::cos(x));
        break;
      case WindowType::kHamming:
        w[k] = static_cast<float>(0.54 - 0.46 * std::cos(x));
        break;
      case WindowType::kBlackman:
        w[k] = static_cast<float>(0.42 - 0.5 * std::cos(x) +
                                  0.08 * std::cos(2.0 * x));
        break;
      case WindowType::kRect:
        break;
    }
  }
  return w;
}

}  // namespace rjf::dsp
