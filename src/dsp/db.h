// Decibel / power helpers used by thresholds, channel losses, and meters.
#pragma once

#include <span>

#include "dsp/types.h"

namespace rjf::dsp {

/// Power ratio -> dB. db_from_ratio(100) == 20.
[[nodiscard]] double db_from_ratio(double power_ratio) noexcept;

/// dB -> power ratio. ratio_from_db(20) == 100.
[[nodiscard]] double ratio_from_db(double db) noexcept;

/// dB -> amplitude (voltage) ratio. amplitude_from_db(20) == 10.
[[nodiscard]] double amplitude_from_db(double db) noexcept;

/// Mean power (|x|^2 averaged) of a complex buffer. Returns 0 for empty input.
[[nodiscard]] double mean_power(std::span<const cfloat> x) noexcept;

/// Mean power in dB relative to full scale 1.0. Empty/zero input -> -inf.
[[nodiscard]] double mean_power_db(std::span<const cfloat> x) noexcept;

/// Scale a buffer in place so its mean power equals `target_power`.
/// Buffers with zero power are left untouched.
void set_mean_power(std::span<cfloat> x, double target_power) noexcept;

}  // namespace rjf::dsp
