#include "dsp/cic.h"

#include <cmath>
#include <stdexcept>

namespace rjf::dsp {
namespace {

// CIC arithmetic must be performed in wrapping integer precision: the
// integrators grow without bound and rely on two's-complement wraparound
// cancelling exactly in the combs (Hogenauer's trick). Floats break the
// cancellation, so samples are scaled to fixed point at the boundary.
constexpr double kInputScale = 1048576.0;  // 2^20

struct WrapAcc {
  std::uint64_t i = 0;
  std::uint64_t q = 0;
};

WrapAcc to_acc(cfloat x) noexcept {
  return {static_cast<std::uint64_t>(
              static_cast<std::int64_t>(std::llround(x.real() * kInputScale))),
          static_cast<std::uint64_t>(
              static_cast<std::int64_t>(std::llround(x.imag() * kInputScale)))};
}

cfloat from_acc(const WrapAcc& a, double gain) noexcept {
  const double scale = 1.0 / (gain * kInputScale);
  return cfloat{
      static_cast<float>(static_cast<double>(static_cast<std::int64_t>(a.i)) *
                         scale),
      static_cast<float>(static_cast<double>(static_cast<std::int64_t>(a.q)) *
                         scale)};
}

}  // namespace

CicDecimator::CicDecimator(std::size_t factor, std::size_t stages)
    : factor_(factor),
      stages_(stages),
      gain_(std::pow(static_cast<double>(factor), static_cast<double>(stages))) {
  if (factor == 0 || stages == 0)
    throw std::invalid_argument("CicDecimator: factor and stages must be >= 1");
  acc_i_.assign(stages * 2, 0);
  acc_c_.assign(stages * 2, 0);
}

cvec CicDecimator::process(std::span<const cfloat> in) {
  cvec out;
  out.reserve(in.size() / factor_ + 1);
  for (const cfloat x : in) {
    WrapAcc acc = to_acc(x);
    // Integrator cascade at the high rate (wrapping adds).
    for (std::size_t s = 0; s < stages_; ++s) {
      acc_i_[2 * s] += acc.i;
      acc_i_[2 * s + 1] += acc.q;
      acc.i = acc_i_[2 * s];
      acc.q = acc_i_[2 * s + 1];
    }
    if (++phase_ < factor_) continue;
    phase_ = 0;
    // Comb cascade at the low rate (wrapping subtracts).
    for (std::size_t s = 0; s < stages_; ++s) {
      const std::uint64_t pi = acc_c_[2 * s];
      const std::uint64_t pq = acc_c_[2 * s + 1];
      acc_c_[2 * s] = acc.i;
      acc_c_[2 * s + 1] = acc.q;
      acc.i -= pi;
      acc.q -= pq;
    }
    out.push_back(from_acc(acc, gain_));
  }
  return out;
}

void CicDecimator::reset() noexcept {
  std::fill(acc_i_.begin(), acc_i_.end(), 0);
  std::fill(acc_c_.begin(), acc_c_.end(), 0);
  phase_ = 0;
}

CicInterpolator::CicInterpolator(std::size_t factor, std::size_t stages)
    : factor_(factor),
      stages_(stages),
      gain_(std::pow(static_cast<double>(factor),
                     static_cast<double>(stages) - 1.0)) {
  if (factor == 0 || stages == 0)
    throw std::invalid_argument(
        "CicInterpolator: factor and stages must be >= 1");
  acc_i_.assign(stages * 2, 0);
  acc_c_.assign(stages * 2, 0);
}

cvec CicInterpolator::process(std::span<const cfloat> in) {
  cvec out;
  out.reserve(in.size() * factor_);
  for (const cfloat x : in) {
    WrapAcc acc = to_acc(x);
    for (std::size_t s = 0; s < stages_; ++s) {
      const std::uint64_t pi = acc_c_[2 * s];
      const std::uint64_t pq = acc_c_[2 * s + 1];
      acc_c_[2 * s] = acc.i;
      acc_c_[2 * s + 1] = acc.q;
      acc.i -= pi;
      acc.q -= pq;
    }
    for (std::size_t r = 0; r < factor_; ++r) {
      WrapAcc v = (r == 0) ? acc : WrapAcc{};
      for (std::size_t s = 0; s < stages_; ++s) {
        acc_i_[2 * s] += v.i;
        acc_i_[2 * s + 1] += v.q;
        v.i = acc_i_[2 * s];
        v.q = acc_i_[2 * s + 1];
      }
      out.push_back(from_acc(v, gain_));
    }
  }
  return out;
}

void CicInterpolator::reset() noexcept {
  std::fill(acc_i_.begin(), acc_i_.end(), 0);
  std::fill(acc_c_.begin(), acc_c_.end(), 0);
}

}  // namespace rjf::dsp
