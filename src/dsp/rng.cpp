#include "dsp/rng.h"

#include <cmath>
#include <numbers>

namespace rjf::dsp {
namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

// splitmix64: expands one seed word into the full xoshiro state.
constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

std::uint64_t derive_seed(std::uint64_t base, std::uint64_t stream) noexcept {
  // Each stream advances the splitmix state by its own multiple of the
  // golden gamma (the increment splitmix64 itself uses), so stream k's seed
  // equals the (k+1)-th output of a splitmix sequence started at `base`:
  // well-mixed, collision-free across streams, and independent of ordering.
  std::uint64_t state = base + stream * 0x9e3779b97f4a7c15ULL;
  return splitmix64(state);
}

Xoshiro256::Xoshiro256(std::uint64_t seed) noexcept {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64(sm);
}

std::uint64_t Xoshiro256::next() noexcept {
  const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Xoshiro256::uniform() noexcept {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

std::uint64_t Xoshiro256::uniform_int(std::uint64_t n) noexcept {
  // Lemire's multiply-shift rejection method.
  const std::uint64_t x = next();
  __uint128_t m = static_cast<__uint128_t>(x) * n;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < n) {
    const std::uint64_t threshold = -n % n;
    while (lo < threshold) {
      m = static_cast<__uint128_t>(next()) * n;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

double Xoshiro256::gaussian() noexcept {
  if (has_cached_) {
    has_cached_ = false;
    return cached_;
  }
  // Box-Muller; 1 - uniform() keeps the log argument strictly positive.
  const double u1 = 1.0 - uniform();
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * std::numbers::pi * u2;
  cached_ = r * std::sin(theta);
  has_cached_ = true;
  return r * std::cos(theta);
}

cfloat Xoshiro256::complex_gaussian(double variance) noexcept {
  const double sigma = std::sqrt(variance / 2.0);
  return cfloat{static_cast<float>(sigma * gaussian()),
                static_cast<float>(sigma * gaussian())};
}

}  // namespace rjf::dsp
