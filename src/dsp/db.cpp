#include "dsp/db.h"

#include <cmath>
#include <limits>

namespace rjf::dsp {

double db_from_ratio(double power_ratio) noexcept {
  if (power_ratio <= 0.0) return -std::numeric_limits<double>::infinity();
  return 10.0 * std::log10(power_ratio);
}

double ratio_from_db(double db) noexcept { return std::pow(10.0, db / 10.0); }

double amplitude_from_db(double db) noexcept { return std::pow(10.0, db / 20.0); }

double mean_power(std::span<const cfloat> x) noexcept {
  if (x.empty()) return 0.0;
  double acc = 0.0;
  for (const cfloat s : x) acc += static_cast<double>(std::norm(s));
  return acc / static_cast<double>(x.size());
}

double mean_power_db(std::span<const cfloat> x) noexcept {
  return db_from_ratio(mean_power(x));
}

void set_mean_power(std::span<cfloat> x, double target_power) noexcept {
  const double p = mean_power(x);
  if (p <= 0.0) return;
  const float g = static_cast<float>(std::sqrt(target_power / p));
  for (cfloat& s : x) s *= g;
}

}  // namespace rjf::dsp
