#include "dsp/psd.h"

#include <algorithm>
#include <cmath>

#include "dsp/fft.h"

namespace rjf::dsp {

std::vector<double> welch_psd(std::span<const cfloat> x,
                              const PsdConfig& config) {
  const std::size_t n = config.fft_size;
  if (x.size() < n || !is_pow2(n)) return {};
  const std::size_t hop = n - std::min(config.overlap, n - 1);

  const std::vector<float> window = make_window(config.window, n);
  double window_power = 0.0;
  for (const float w : window) window_power += w * w;

  std::vector<double> acc(n, 0.0);
  std::size_t segments = 0;
  cvec seg(n);
  for (std::size_t at = 0; at + n <= x.size(); at += hop, ++segments) {
    for (std::size_t k = 0; k < n; ++k) seg[k] = x[at + k] * window[k];
    fft(seg);
    for (std::size_t k = 0; k < n; ++k)
      acc[k] += static_cast<double>(std::norm(seg[k]));
  }
  if (segments == 0) return {};

  // Normalise so the PSD sums to the mean power, and centre DC.
  const double norm = 1.0 / (static_cast<double>(segments) * window_power *
                             static_cast<double>(n));
  std::vector<double> psd(n);
  for (std::size_t k = 0; k < n; ++k)
    psd[(k + n / 2) % n] = acc[k] * norm * static_cast<double>(n);
  return psd;
}

double band_power(std::span<const double> psd, double f_lo, double f_hi) {
  if (psd.empty()) return 0.0;
  const auto n = static_cast<double>(psd.size());
  double power = 0.0;
  for (std::size_t k = 0; k < psd.size(); ++k) {
    const double f = (static_cast<double>(k) - n / 2.0) / n;
    if (f >= f_lo && f < f_hi) power += psd[k];
  }
  return power / n;
}

}  // namespace rjf::dsp
