// Welch power-spectral-density estimation — the host-side "signal
// intelligence" view of the band (what a spectrum display hanging off the
// GNU Radio backend would show), used by examples and diagnostics.
#pragma once

#include <cstddef>
#include <vector>

#include "dsp/types.h"
#include "dsp/window.h"

namespace rjf::dsp {

struct PsdConfig {
  std::size_t fft_size = 256;          // power of two
  std::size_t overlap = 128;           // samples of overlap between segments
  WindowType window = WindowType::kHann;
};

/// Welch PSD estimate. Returns `fft_size` bins of linear power, DC-centred
/// (bin 0 = -Fs/2, bin N/2 = DC). Empty input -> empty result.
[[nodiscard]] std::vector<double> welch_psd(std::span<const cfloat> x,
                                            const PsdConfig& config = {});

/// Total power in a frequency band [f_lo, f_hi) of a DC-centred PSD, where
/// frequencies are normalised to [-0.5, 0.5) cycles/sample.
[[nodiscard]] double band_power(std::span<const double> psd, double f_lo,
                                double f_hi);

}  // namespace rjf::dsp
