// Core sample types shared across the framework.
//
// Two domains coexist:
//  - host/channel domain: std::complex<float> baseband samples ("cfloat")
//  - FPGA fabric domain: 16-bit signed I/Q pairs ("IQ16"), matching the
//    USRP N210 datapath width used throughout the paper's custom DSP core.
#pragma once

#include <complex>
#include <cstdint>
#include <span>
#include <vector>

namespace rjf::dsp {

using cfloat = std::complex<float>;
using cvec = std::vector<cfloat>;

/// One 16-bit fixed-point baseband sample as it travels through the
/// USRP DDC/DUC chains and the custom FPGA core.
struct IQ16 {
  std::int16_t i = 0;
  std::int16_t q = 0;

  friend bool operator==(const IQ16&, const IQ16&) = default;
};

using iqvec = std::vector<IQ16>;

/// Saturating conversion from a float in [-1, 1) to a Q0.15 sample value.
[[nodiscard]] std::int16_t to_q15(float x) noexcept;

/// Inverse of to_q15: maps int16 full scale back to [-1, 1).
[[nodiscard]] float from_q15(std::int16_t x) noexcept;

/// Convert a float baseband sample to the 16-bit fabric representation.
[[nodiscard]] IQ16 to_iq16(cfloat x) noexcept;

/// Convert a fabric sample back to float baseband.
[[nodiscard]] cfloat from_iq16(IQ16 x) noexcept;

/// Bulk conversions.
[[nodiscard]] iqvec to_iq16(std::span<const cfloat> in);
[[nodiscard]] cvec from_iq16(std::span<const IQ16> in);

}  // namespace rjf::dsp
