// Window functions for spectral shaping and measurement.
#pragma once

#include <cstddef>
#include <vector>

namespace rjf::dsp {

enum class WindowType { kRect, kHann, kHamming, kBlackman };

/// Generate an N-point window of the requested type.
[[nodiscard]] std::vector<float> make_window(WindowType type, std::size_t n);

}  // namespace rjf::dsp
