#include "dsp/crc32.h"

#include <array>

namespace rjf::dsp {
namespace {

constexpr std::array<std::uint32_t, 256> make_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit)
      c = (c & 1u) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
    table[i] = c;
  }
  return table;
}

constexpr auto kTable = make_table();

}  // namespace

void Crc32::update(std::span<const std::uint8_t> data) noexcept {
  for (const std::uint8_t byte : data)
    state_ = kTable[(state_ ^ byte) & 0xFFu] ^ (state_ >> 8);
}

std::uint32_t crc32(std::span<const std::uint8_t> data) noexcept {
  Crc32 crc;
  crc.update(data);
  return crc.value();
}

}  // namespace rjf::dsp
