// Template bodies for the lane-parallel Viterbi ACS kernels.  Included by
// the per-ISA translation units (kernels_sse42.cpp / kernels_avx2.cpp),
// which instantiate the templates with an anonymous-namespace Ops struct —
// anonymous so each TU gets a unique type and there is no ODR overlap
// between code compiled with different -m flags.
//
// Ops contract (u8 side): u8v type, kU8Lanes, loadu8/storeu8, set1u8,
// addsu8 (saturating), subsu8, minu8, cmpequ8, movemasku8 (one bit per
// byte lane), dup_low8/dup_high8 (duplicate each byte of the low/high
// half into two adjacent lanes, in order).
// Ops contract (f32 side): f32v type, kF32Lanes, loaduf/storeuf, set1f,
// addf, subf, minf(a,b) -> b when a is NaN (i.e. _mm_min_ps(a, b)),
// cmpltf(a,b) -> all-ones where a<b (ordered), blendf(a,b,mask) -> mask?b:a,
// movemaskf, dupf(v, lo, hi).
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>

#include "dsp/simd/viterbi_trellis.h"

namespace rjf::dsp::simd {

// Forward ACS with u8 metrics.  See viterbi_trellis.h for why u8 lanes
// with a dead sentinel and a 64-step renormalisation reproduce the
// reference's u32 arithmetic exactly: the live-state metric spread is
// bounded by 12, so saturation never touches a live path, and the renorm
// subtracts the same value from every lane so every comparison (and
// therefore every survivor bit and the final argmin) is unchanged.
template <class Ops>
void viterbi_hard_acs_t(const std::uint8_t* coded, std::size_t n_steps,
                        std::uint64_t* survivors,
                        std::uint16_t* final_metrics) {
  using V = typename Ops::u8v;
  constexpr std::size_t kL = Ops::kU8Lanes;
  constexpr std::size_t kNV = kVitStates / kL;

  // Branch metrics depend only on the received pair (r0, r1), of which
  // there are 9 values (0/1/erasure each) — precompute all of them so the
  // per-step loop is pure loads/adds/mins, keeping the live register
  // count within the register file.  Cost of emitting expected bit e
  // against received r: 1 iff r is not an erasure and differs from e —
  // same predicate as the reference loop.  [0] is the A branch (expected
  // e0/e1), [1] the B branch (complement of both).
  alignas(32) std::uint8_t bm_table[9][2][kVitStates];
  for (unsigned r0 = 0; r0 < 3; ++r0) {
    for (unsigned r1 = 0; r1 < 3; ++r1) {
      for (unsigned n = 0; n < kVitStates; ++n) {
        const unsigned e0 = kVitE0[n];
        const unsigned e1 = kVitE1[n];
        const auto cost = [](unsigned r, unsigned e) -> std::uint8_t {
          return (r != 2 && r != e) ? 1 : 0;
        };
        bm_table[r0 * 3 + r1][0][n] =
            static_cast<std::uint8_t>(cost(r0, e0) + cost(r1, e1));
        bm_table[r0 * 3 + r1][1][n] =
            static_cast<std::uint8_t>(cost(r0, e0 ^ 1u) + cost(r1, e1 ^ 1u));
      }
    }
  }

  V metric[kNV];
  {
    alignas(32) std::uint8_t init[kVitStates];
    for (std::size_t s = 0; s < kVitStates; ++s) init[s] = kVitDead;
    init[0] = 0;
    for (std::size_t v = 0; v < kNV; ++v) metric[v] = Ops::loadu8(init + v * kL);
  }

  V next[kNV];
  for (std::size_t t = 0; t < n_steps; ++t) {
    // Out-of-domain input values (> 2) are folded onto the erasure row:
    // the reference charges them as a uniform +1 on every branch, which
    // shifts all path metrics equally — identical survivors and decoded
    // bits, so the fold is behaviour-preserving where it matters.
    const unsigned r0 = std::min<unsigned>(coded[2 * t], 2u);
    const unsigned r1 = std::min<unsigned>(coded[2 * t + 1], 2u);
    const std::uint8_t* bma = bm_table[r0 * 3 + r1][0];
    const std::uint8_t* bmb = bm_table[r0 * 3 + r1][1];

    std::uint64_t word = 0;
    for (std::size_t v = 0; v < kNV; ++v) {
      // Candidate-A predecessor of lane n is state n>>1 (read from the
      // low half of the old metrics), candidate B is state (n>>1)+32
      // (same position in the high half).
      const V ma = metric[v / 2];
      const V mb = metric[kNV / 2 + v / 2];
      const V pa = (v % 2 == 0) ? Ops::dup_low8(ma) : Ops::dup_high8(ma);
      const V pb = (v % 2 == 0) ? Ops::dup_low8(mb) : Ops::dup_high8(mb);
      const V cand_a = Ops::addsu8(pa, Ops::loadu8(bma + v * kL));
      const V cand_b = Ops::addsu8(pb, Ops::loadu8(bmb + v * kL));
      const V nm = Ops::minu8(cand_a, cand_b);
      // Reference tie-break: candidate A (lower predecessor index) wins
      // unless B is strictly smaller, i.e. survivor bit = !(nm == candA).
      const std::uint64_t keep_a = Ops::movemasku8(Ops::cmpequ8(nm, cand_a));
      const std::uint64_t lane_mask = (kL == 64) ? ~0ull : ((1ull << kL) - 1);
      word |= (~keep_a & lane_mask) << (v * kL);
      next[v] = nm;
    }
    for (std::size_t v = 0; v < kNV; ++v) metric[v] = next[v];
    survivors[t] = word;

    if ((t & (kVitRenormInterval - 1)) == kVitRenormInterval - 1) {
      alignas(32) std::uint8_t buf[kVitStates];
      for (std::size_t v = 0; v < kNV; ++v)
        Ops::storeu8(buf + v * kL, metric[v]);
      std::uint8_t lo = buf[0];
      for (std::size_t s = 1; s < kVitStates; ++s)
        if (buf[s] < lo) lo = buf[s];
      const V sub = Ops::set1u8(lo);
      for (std::size_t v = 0; v < kNV; ++v)
        metric[v] = Ops::subsu8(metric[v], sub);
    }
  }

  for (std::size_t v = 0; v < kNV; ++v) {
    alignas(32) std::uint8_t buf[kL];
    Ops::storeu8(buf, metric[v]);
    for (std::size_t i = 0; i < kL; ++i)
      final_metrics[v * kL + i] = buf[i];
  }
}

// Forward ACS with f32 metrics, replicating the scalar soft reference's
// float semantics operation-for-operation:
//  - the reference skips predecessors with metric >= 1e30f and never
//    stores a candidate unless it beats the 1e30f initialisation, so no
//    stored metric ever exceeds 1e30f.  Clamping each candidate with
//    minf(cand, 1e30f) reproduces both effects (a dead predecessor's
//    candidate collapses back to exactly 1e30f and can never win a
//    strictly-less comparison, and a huge-LLR overshoot from a live
//    predecessor saturates to the same 1e30f the reference would have
//    kept by refusing the update).
//  - minf returns its second operand when the first is NaN, which matches
//    the reference's `cand < stored` being false for NaN candidates.
template <class Ops>
void viterbi_soft_acs_t(const float* llrs, std::size_t n_steps,
                        std::uint64_t* survivors, float* final_metrics) {
  using V = typename Ops::f32v;
  constexpr std::size_t kL = Ops::kF32Lanes;
  constexpr std::size_t kNV = kVitStates / kL;

  V metric[kNV];
  V mask_e0[kNV];
  V mask_e1[kNV];
  {
    alignas(32) float init[kVitStates];
    for (std::size_t s = 0; s < kVitStates; ++s) init[s] = kVitSoftInf;
    init[0] = 0.0f;
    const float* m0 = reinterpret_cast<const float*>(kVitMaskE0F32.data());
    const float* m1 = reinterpret_cast<const float*>(kVitMaskE1F32.data());
    for (std::size_t v = 0; v < kNV; ++v) {
      metric[v] = Ops::loaduf(init + v * kL);
      mask_e0[v] = Ops::loaduf(m0 + v * kL);
      mask_e1[v] = Ops::loaduf(m1 + v * kL);
    }
  }

  const V inf_v = Ops::set1f(kVitSoftInf);
  V pred_a[kNV];
  V pred_b[kNV];
  for (std::size_t t = 0; t < n_steps; ++t) {
    const float l0 = llrs[2 * t];
    const float l1 = llrs[2 * t + 1];
    // Reference branch cost per coded bit: std::max(l, 0) when expecting
    // 0, std::max(-l, 0) when expecting 1.  Computed with std::max in
    // scalar float — identical ops to the reference, including its NaN
    // propagation (std::max(NaN, 0) is NaN, which the clamp below turns
    // into a candidate that can never win, exactly like the reference's
    // failed `cand < stored` comparison).
    const float f00 = std::max(l0, 0.0f);
    const float f01 = std::max(-l0, 0.0f);
    const float f10 = std::max(l1, 0.0f);
    const float f11 = std::max(-l1, 0.0f);
    const V c00 = Ops::set1f(f00);
    const V c01 = Ops::set1f(f01);
    const V c10 = Ops::set1f(f10);
    const V c11 = Ops::set1f(f11);

    for (std::size_t h = 0; h < kNV / 2; ++h) {
      Ops::dupf(metric[h], pred_a[2 * h], pred_a[2 * h + 1]);
      Ops::dupf(metric[kNV / 2 + h], pred_b[2 * h], pred_b[2 * h + 1]);
    }

    std::uint64_t word = 0;
    for (std::size_t v = 0; v < kNV; ++v) {
      const V bm_a = Ops::addf(Ops::blendf(c00, c01, mask_e0[v]),
                               Ops::blendf(c10, c11, mask_e1[v]));
      const V bm_b = Ops::addf(Ops::blendf(c01, c00, mask_e0[v]),
                               Ops::blendf(c11, c10, mask_e1[v]));
      const V cand_a = Ops::minf(Ops::addf(pred_a[v], bm_a), inf_v);
      const V cand_b = Ops::minf(Ops::addf(pred_b[v], bm_b), inf_v);
      // Strictly-less wins for B, exactly like the reference's ordered
      // `cand < stored` after A has been stored.
      const V b_wins = Ops::cmpltf(cand_b, cand_a);
      const unsigned mask = Ops::movemaskf(b_wins);
      word |= static_cast<std::uint64_t>(mask) << (v * kL);
      metric[v] = Ops::minf(cand_a, cand_b);
    }
    survivors[t] = word;
  }

  for (std::size_t v = 0; v < kNV; ++v)
    Ops::storeuf(final_metrics + v * kL, metric[v]);
}

}  // namespace rjf::dsp::simd
