// AVX2 instantiations of the SIMD DSP kernels.  This TU is the only one
// compiled with -mavx2; the Ops structs live in an anonymous namespace so
// the templates instantiate with TU-unique types (no ODR overlap with the
// SSE4.2 TU).  When the toolchain lacks -mavx2 (or RJF_ENABLE_SIMD is
// OFF), the entry points compile as stubs returning false and the
// dispatcher falls back to the next-best ISA.
#include "dsp/simd/fft_kernels.h"
#include "dsp/simd/viterbi.h"

#if defined(RJF_SIMD_HAVE_AVX2) && defined(__AVX2__)

#include <immintrin.h>

#include "dsp/simd/fft_kernels_impl.h"
#include "dsp/simd/viterbi_kernels_impl.h"

namespace rjf::dsp::simd {
namespace {

struct AvxOps {
  using u8v = __m256i;
  static constexpr std::size_t kU8Lanes = 32;
  static u8v loadu8(const std::uint8_t* p) noexcept {
    return _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p));
  }
  static void storeu8(std::uint8_t* p, u8v v) noexcept {
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(p), v);
  }
  static u8v set1u8(std::uint8_t x) noexcept {
    return _mm256_set1_epi8(static_cast<char>(x));
  }
  static u8v addsu8(u8v a, u8v b) noexcept { return _mm256_adds_epu8(a, b); }
  static u8v subsu8(u8v a, u8v b) noexcept { return _mm256_subs_epu8(a, b); }
  static u8v minu8(u8v a, u8v b) noexcept { return _mm256_min_epu8(a, b); }
  static u8v cmpequ8(u8v a, u8v b) noexcept { return _mm256_cmpeq_epi8(a, b); }
  static unsigned movemasku8(u8v v) noexcept {
    return static_cast<unsigned>(_mm256_movemask_epi8(v));
  }
  // In-order duplication of one half of the register: byte indices that
  // repeat each byte, applied after broadcasting the chosen 128-bit half
  // to both lanes (shuffle_epi8 indexes within each 128-bit lane, so the
  // upper output lane picks bytes 8..15 of the same half).
  static __m256i dup_idx() noexcept {
    return _mm256_setr_epi8(0, 0, 1, 1, 2, 2, 3, 3, 4, 4, 5, 5, 6, 6, 7, 7,
                            8, 8, 9, 9, 10, 10, 11, 11, 12, 12, 13, 13, 14,
                            14, 15, 15);
  }
  static u8v dup_low8(u8v v) noexcept {
    return _mm256_shuffle_epi8(_mm256_permute4x64_epi64(v, 0x44), dup_idx());
  }
  static u8v dup_high8(u8v v) noexcept {
    return _mm256_shuffle_epi8(_mm256_permute4x64_epi64(v, 0xEE), dup_idx());
  }

  using f32v = __m256;
  static constexpr std::size_t kF32Lanes = 8;
  static f32v loaduf(const float* p) noexcept { return _mm256_loadu_ps(p); }
  static void storeuf(float* p, f32v v) noexcept { _mm256_storeu_ps(p, v); }
  static f32v set1f(float x) noexcept { return _mm256_set1_ps(x); }
  static f32v addf(f32v a, f32v b) noexcept { return _mm256_add_ps(a, b); }
  static f32v subf(f32v a, f32v b) noexcept { return _mm256_sub_ps(a, b); }
  static f32v minf(f32v a, f32v b) noexcept { return _mm256_min_ps(a, b); }
  static f32v cmpltf(f32v a, f32v b) noexcept {
    return _mm256_cmp_ps(a, b, _CMP_LT_OQ);
  }
  static f32v blendf(f32v a, f32v b, f32v mask) noexcept {
    return _mm256_blendv_ps(a, b, mask);
  }
  static unsigned movemaskf(f32v v) noexcept {
    return static_cast<unsigned>(_mm256_movemask_ps(v));
  }
  static void dupf(f32v v, f32v& lo, f32v& hi) noexcept {
    const __m256 a = _mm256_unpacklo_ps(v, v);
    const __m256 b = _mm256_unpackhi_ps(v, v);
    lo = _mm256_permute2f128_ps(a, b, 0x20);
    hi = _mm256_permute2f128_ps(a, b, 0x31);
  }

  static constexpr std::size_t kComplexLanes = 4;
  // (ar*br - ai*bi, ai*br + ar*bi) via addsub: even lanes subtract,
  // odd lanes add — same multiply/add sequence as the scalar stages.
  static f32v cmul(f32v a, f32v b) noexcept {
    const __m256 br = _mm256_moveldup_ps(b);
    const __m256 bi = _mm256_movehdup_ps(b);
    const __m256 asw = _mm256_permute_ps(a, 0xB1);  // (ai, ar) pairs
    return _mm256_addsub_ps(_mm256_mul_ps(a, br), _mm256_mul_ps(asw, bi));
  }
  static f32v mul_i(f32v v) noexcept {
    const __m256 sw = _mm256_permute_ps(v, 0xB1);  // (im, re) pairs
    const __m256 sign = _mm256_setr_ps(-0.0f, 0.0f, -0.0f, 0.0f,
                                       -0.0f, 0.0f, -0.0f, 0.0f);
    return _mm256_xor_ps(sw, sign);  // (-im, re) = i*v
  }
};

}  // namespace

namespace detail {

bool viterbi_hard_avx2(const std::uint8_t* coded, std::size_t n_steps,
                       std::uint64_t* survivors, std::uint16_t* final_metrics) {
  viterbi_hard_acs_t<AvxOps>(coded, n_steps, survivors, final_metrics);
  return true;
}

bool viterbi_soft_avx2(const float* llrs, std::size_t n_steps,
                       std::uint64_t* survivors, float* final_metrics) {
  viterbi_soft_acs_t<AvxOps>(llrs, n_steps, survivors, final_metrics);
  return true;
}

bool fft_exec_avx2(const FftKernelRun& run, float* x) {
  fft_exec_t<AvxOps>(run, x);
  return true;
}

}  // namespace detail
}  // namespace rjf::dsp::simd

#else  // no AVX2 build

namespace rjf::dsp::simd::detail {

bool viterbi_hard_avx2(const std::uint8_t*, std::size_t, std::uint64_t*,
                       std::uint16_t*) {
  return false;
}

bool viterbi_soft_avx2(const float*, std::size_t, std::uint64_t*, float*) {
  return false;
}

bool fft_exec_avx2(const FftKernelRun&, float*) { return false; }

}  // namespace rjf::dsp::simd::detail

#endif
