// Lane-parallel K=7 Viterbi add-compare-select kernels.
//
// The kernels run ONLY the forward ACS recursion: they fill one 64-bit
// survivor word per trellis step (bit n = evicted bit chosen for
// next-state n) and the final 64 path metrics.  Traceback stays scalar at
// the call site (phy80211/convolutional.cpp) and is shared with the
// reference decoder, so the decoded bits are produced by identical code
// either way.
//
// Equivalence contract (tested in tests/test_phy80211_viterbi_simd.cpp):
//  - hard kernel: decoded bits are BIT-IDENTICAL to the scalar reference
//    for every input, including erasures and tie-heavy streams.  Ties are
//    broken exactly like the reference (predecessor n>>1 wins, because the
//    scalar loop visits it first and the +32 predecessor must be strictly
//    better to evict it).
//  - soft kernel: the per-step metric updates replicate the reference's
//    float operations (including its >= 1e30f dead-state skip and its
//    never-store-above-1e30f clamp), so metrics and decoded bits match
//    bit-for-bit even for saturating LLR magnitudes and NaNs.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

#include "dsp/simd/dispatch.h"

namespace rjf::dsp::simd {

/// Hard-decision ACS over coded.size()/2 steps; coded bits are 0/1/2
/// (2 = erasure).  survivors must hold coded.size()/2 words and
/// final_metrics 64 entries.  Returns false when `isa` has no compiled
/// kernel (caller falls back to the scalar reference).
bool viterbi_hard_acs(Isa isa, std::span<const std::uint8_t> coded,
                      std::uint64_t* survivors, std::uint16_t* final_metrics);

/// Soft-decision ACS over llrs.size()/2 steps (LLR > 0 means bit 1).
bool viterbi_soft_acs(Isa isa, std::span<const float> llrs,
                      std::uint64_t* survivors, float* final_metrics);

namespace detail {
bool viterbi_hard_sse42(const std::uint8_t* coded, std::size_t n_steps,
                        std::uint64_t* survivors, std::uint16_t* final_metrics);
bool viterbi_soft_sse42(const float* llrs, std::size_t n_steps,
                        std::uint64_t* survivors, float* final_metrics);
bool viterbi_hard_avx2(const std::uint8_t* coded, std::size_t n_steps,
                       std::uint64_t* survivors, std::uint16_t* final_metrics);
bool viterbi_soft_avx2(const float* llrs, std::size_t n_steps,
                       std::uint64_t* survivors, float* final_metrics);
}  // namespace detail

}  // namespace rjf::dsp::simd
