// Compile-time trellis structure of the 802.11 K=7 convolutional code
// (g0 = 0133, g1 = 0171), shared by every lane-parallel Viterbi kernel.
//
// Lane layout (DESIGN.md section 12): the 64 path metrics are kept in
// NEXT-STATE order n = 0..63 across the vector register file.  The two
// predecessors of next-state n are
//
//     p0 = n >> 1        (evicted bit 0)
//     p1 = (n >> 1) + 32 (evicted bit 1)
//
// i.e. candidate A for lane n reads lane n/2 of the previous metrics
// (states 0..31, each duplicated into two adjacent lanes) and candidate B
// reads lane n/2 + 32.  The encoder output expected on the A branch is a
// pure function of n: the shift register seen by the generators is
// x = (p0 << 1) | (n & 1) = n.  Because BOTH generators tap bit 6 of the
// register, the B branch (p1 = p0 + 32 flips that bit) expects the
// complement of both output bits — so one pair of constant 64-lane masks
// (kE0/kE1 below) selects the right branch costs for A, and the inverted
// selection yields B.
#pragma once

#include <array>
#include <cstdint>

namespace rjf::dsp::simd {

inline constexpr unsigned kVitG0 = 0133;
inline constexpr unsigned kVitG1 = 0171;
inline constexpr unsigned kVitStates = 64;

constexpr std::uint8_t vit_parity(unsigned x) noexcept {
  x ^= x >> 4;
  x ^= x >> 2;
  x ^= x >> 1;
  return static_cast<std::uint8_t>(x & 1u);
}

constexpr std::array<std::uint8_t, kVitStates> make_expected(unsigned gen) {
  std::array<std::uint8_t, kVitStates> e{};
  for (unsigned n = 0; n < kVitStates; ++n) e[n] = vit_parity(n & gen);
  return e;
}

/// Expected generator outputs on the A branch into next-state n.
inline constexpr auto kVitE0 = make_expected(kVitG0);
inline constexpr auto kVitE1 = make_expected(kVitG1);

/// Blend masks (all-ones where the expected bit is 1) in the 32-bit lane
/// width the soft (f32) kernels consume.
constexpr std::array<std::uint32_t, kVitStates> make_mask32(
    const std::array<std::uint8_t, kVitStates>& e) {
  std::array<std::uint32_t, kVitStates> m{};
  for (unsigned n = 0; n < kVitStates; ++n) m[n] = e[n] ? 0xFFFFFFFFu : 0u;
  return m;
}

alignas(32) inline constexpr auto kVitMaskE0F32 = make_mask32(kVitE0);
alignas(32) inline constexpr auto kVitMaskE1F32 = make_mask32(kVitE1);

/// Hard-decision kernels keep metrics in u8 lanes (all 64 states in two
/// ymm registers).  This is exact because the metric spread across live
/// states is bounded: every state is reachable from every other within
/// K-1 = 6 steps at branch cost <= 2 each, so live metrics never differ
/// by more than 12.  Renormalising (subtracting the minimum) every 64
/// steps bounds live values by 12 + 2*64 = 140 < 224, so saturation never
/// touches a live path and every comparison matches the reference's u32
/// arithmetic.  Unreachable states (which only exist for t < 6) start at
/// the dead sentinel, which stays strictly above any live candidate until
/// they disappear.
inline constexpr std::uint8_t kVitDead = 224;
inline constexpr std::size_t kVitRenormInterval = 64;

/// Soft kernels mirror the scalar reference's float infinity exactly.
inline constexpr float kVitSoftInf = 1e30f;

}  // namespace rjf::dsp::simd
