// Kernel-facing view of an FFT plan (see dsp/fft_plan.h for the owning
// object).  The plan hands the kernels a flat description — stage list
// with precomputed twiddle tables — so the per-ISA TUs depend only on
// this POD view, not on the plan class.
//
// Data layout: the signal is interleaved re/im float pairs (the layout of
// std::complex<float>), already bit-reverse permuted by the caller.
// Stage s is a radix-4 butterfly pass with quarter length L = quarter:
// within each block of 4L complexes, position k holds F0, L+k holds F2
// (twiddle w2 = W^(2k)), 2L+k holds F1 (w1 = W^k), 3L+k holds F3
// (w3 = W^(3k)), W = exp(-2*pi*i/4L) forward.  Twiddle tables are
// interleaved re/im, 2L floats each, generated in double by the plan;
// inverse runs get conjugated tables plus the inverse flag (which flips
// the +/- i cross terms in the butterfly).
#pragma once

#include <cstddef>

#include "dsp/simd/dispatch.h"

namespace rjf::dsp::simd {

struct FftStageView {
  std::size_t quarter;  // L; stage transform length is 4L
  const float* w1;
  const float* w2;
  const float* w3;
};

struct FftKernelRun {
  std::size_t n;        // total complex points (power of two)
  bool radix2_first;    // odd log2(n): one twiddle-free radix-2 pass first
  bool inverse;
  const FftStageView* stages;
  std::size_t n_stages;
};

/// Execute the butterfly passes of `run` over x (2n floats, interleaved,
/// already permuted).  Returns false when `isa` has no compiled kernel.
bool fft_exec(Isa isa, const FftKernelRun& run, float* x);

namespace detail {
bool fft_exec_sse42(const FftKernelRun& run, float* x);
bool fft_exec_avx2(const FftKernelRun& run, float* x);
}  // namespace detail

}  // namespace rjf::dsp::simd
