// Runtime ISA dispatch for the host SIMD DSP kernels (DESIGN.md section 12).
//
// Every kernel in src/dsp/simd exists in up to three variants: a scalar
// reference (the authority — it lives next to the call site, e.g. the
// Viterbi loop in phy80211/convolutional.cpp), an SSE4.2 build and an AVX2
// build. `active_isa()` picks the widest variant that is (a) compiled in
// (the toolchain accepted -msse4.2 / -mavx2 and RJF_ENABLE_SIMD was ON),
// (b) supported by the CPU we are running on, and (c) not vetoed by the
// RJF_DISABLE_SIMD environment variable (set to any non-empty value to
// force the reference path, e.g. when bisecting a numerical question).
//
// The choice is made once per process and cached; callers can therefore
// query it in hot loops for free.
#pragma once

namespace rjf::dsp::simd {

enum class Isa {
  kScalar = 0,
  kSse42 = 1,
  kAvx2 = 2,
};

/// Widest ISA the process will use (cached after the first call).
[[nodiscard]] Isa active_isa() noexcept;

/// What this binary was compiled with (upper bound for active_isa()).
[[nodiscard]] Isa compiled_isa() noexcept;

/// Human-readable name, for bench/test output.
[[nodiscard]] const char* isa_name(Isa isa) noexcept;

}  // namespace rjf::dsp::simd
