// SSE4.2 instantiations of the SIMD DSP kernels.  Mirror of
// kernels_avx2.cpp at xmm width; see that file for the TU-isolation
// rationale.
#include "dsp/simd/fft_kernels.h"
#include "dsp/simd/viterbi.h"

#if defined(RJF_SIMD_HAVE_SSE42) && defined(__SSE4_2__)

#include <nmmintrin.h>

#include "dsp/simd/fft_kernels_impl.h"
#include "dsp/simd/viterbi_kernels_impl.h"

namespace rjf::dsp::simd {
namespace {

struct SseOps {
  using u8v = __m128i;
  static constexpr std::size_t kU8Lanes = 16;
  static u8v loadu8(const std::uint8_t* p) noexcept {
    return _mm_loadu_si128(reinterpret_cast<const __m128i*>(p));
  }
  static void storeu8(std::uint8_t* p, u8v v) noexcept {
    _mm_storeu_si128(reinterpret_cast<__m128i*>(p), v);
  }
  static u8v set1u8(std::uint8_t x) noexcept {
    return _mm_set1_epi8(static_cast<char>(x));
  }
  static u8v addsu8(u8v a, u8v b) noexcept { return _mm_adds_epu8(a, b); }
  static u8v subsu8(u8v a, u8v b) noexcept { return _mm_subs_epu8(a, b); }
  static u8v minu8(u8v a, u8v b) noexcept { return _mm_min_epu8(a, b); }
  static u8v cmpequ8(u8v a, u8v b) noexcept { return _mm_cmpeq_epi8(a, b); }
  static unsigned movemasku8(u8v v) noexcept {
    return static_cast<unsigned>(static_cast<unsigned short>(
        _mm_movemask_epi8(v)));
  }
  // unpack(lo/hi) of (v, v) is already the in-order duplication of the
  // corresponding half at xmm width.
  static u8v dup_low8(u8v v) noexcept { return _mm_unpacklo_epi8(v, v); }
  static u8v dup_high8(u8v v) noexcept { return _mm_unpackhi_epi8(v, v); }

  using f32v = __m128;
  static constexpr std::size_t kF32Lanes = 4;
  static f32v loaduf(const float* p) noexcept { return _mm_loadu_ps(p); }
  static void storeuf(float* p, f32v v) noexcept { _mm_storeu_ps(p, v); }
  static f32v set1f(float x) noexcept { return _mm_set1_ps(x); }
  static f32v addf(f32v a, f32v b) noexcept { return _mm_add_ps(a, b); }
  static f32v subf(f32v a, f32v b) noexcept { return _mm_sub_ps(a, b); }
  static f32v minf(f32v a, f32v b) noexcept { return _mm_min_ps(a, b); }
  static f32v cmpltf(f32v a, f32v b) noexcept { return _mm_cmplt_ps(a, b); }
  static f32v blendf(f32v a, f32v b, f32v mask) noexcept {
    return _mm_blendv_ps(a, b, mask);
  }
  static unsigned movemaskf(f32v v) noexcept {
    return static_cast<unsigned>(_mm_movemask_ps(v));
  }
  static void dupf(f32v v, f32v& lo, f32v& hi) noexcept {
    lo = _mm_unpacklo_ps(v, v);
    hi = _mm_unpackhi_ps(v, v);
  }

  static constexpr std::size_t kComplexLanes = 2;
  static f32v cmul(f32v a, f32v b) noexcept {
    const __m128 br = _mm_moveldup_ps(b);
    const __m128 bi = _mm_movehdup_ps(b);
    const __m128 asw = _mm_shuffle_ps(a, a, 0xB1);  // (ai, ar) pairs
    return _mm_addsub_ps(_mm_mul_ps(a, br), _mm_mul_ps(asw, bi));
  }
  static f32v mul_i(f32v v) noexcept {
    const __m128 sw = _mm_shuffle_ps(v, v, 0xB1);  // (im, re) pairs
    const __m128 sign = _mm_setr_ps(-0.0f, 0.0f, -0.0f, 0.0f);
    return _mm_xor_ps(sw, sign);  // (-im, re) = i*v
  }
};

}  // namespace

namespace detail {

bool viterbi_hard_sse42(const std::uint8_t* coded, std::size_t n_steps,
                        std::uint64_t* survivors,
                        std::uint16_t* final_metrics) {
  viterbi_hard_acs_t<SseOps>(coded, n_steps, survivors, final_metrics);
  return true;
}

bool viterbi_soft_sse42(const float* llrs, std::size_t n_steps,
                        std::uint64_t* survivors, float* final_metrics) {
  viterbi_soft_acs_t<SseOps>(llrs, n_steps, survivors, final_metrics);
  return true;
}

bool fft_exec_sse42(const FftKernelRun& run, float* x) {
  fft_exec_t<SseOps>(run, x);
  return true;
}

}  // namespace detail
}  // namespace rjf::dsp::simd

#else  // no SSE4.2 build

namespace rjf::dsp::simd::detail {

bool viterbi_hard_sse42(const std::uint8_t*, std::size_t, std::uint64_t*,
                        std::uint16_t*) {
  return false;
}

bool viterbi_soft_sse42(const float*, std::size_t, std::uint64_t*, float*) {
  return false;
}

bool fft_exec_sse42(const FftKernelRun&, float*) { return false; }

}  // namespace rjf::dsp::simd::detail

#endif
