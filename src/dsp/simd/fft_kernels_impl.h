// Template body for the vectorized FFT butterfly passes.  Included by the
// per-ISA TUs; instantiated with the same anonymous-namespace Ops structs
// as the Viterbi kernels.
//
// Additional Ops contract used here (on top of the f32 basics):
//   kComplexLanes          — complexes per vector (kF32Lanes / 2)
//   cmul(a, b)             — lane-wise complex multiply of interleaved
//                            re/im pairs, computed as
//                            (ar*br - ai*bi, ai*br + ar*bi)
//   mul_i(v)               — lane-wise multiply by +i: (re,im)->(-im,re)
//
// Stages whose quarter length is below kComplexLanes fall back to the
// shared scalar stage bodies, so SIMD and scalar plans execute the exact
// same arithmetic for those passes.
#pragma once

#include <cstddef>

#include "dsp/simd/fft_kernels.h"
#include "dsp/simd/fft_stages_scalar.h"

namespace rjf::dsp::simd {

template <class Ops>
void fft_exec_t(const FftKernelRun& run, float* x) {
  if (run.radix2_first) fft_radix2_stage(x, run.n);
  using V = typename Ops::f32v;
  constexpr std::size_t kC = Ops::kComplexLanes;
  for (std::size_t s = 0; s < run.n_stages; ++s) {
    const FftStageView& st = run.stages[s];
    const std::size_t L = st.quarter;
    if (L < kC) {
      fft_radix4_stage(x, run.n, L, st.w1, st.w2, st.w3, run.inverse);
      continue;
    }
    for (std::size_t base = 0; base < 2 * run.n; base += 8 * L) {
      for (std::size_t k = 0; k < 2 * L; k += 2 * kC) {
        float* pa = x + base + k;
        float* pc = pa + 2 * L;  // F2 in, X[k+L] out
        float* pb = pa + 4 * L;  // F1 in, X[k+2L] out
        float* pd = pa + 6 * L;  // F3 in, X[k+3L] out
        const V a = Ops::loaduf(pa);
        const V c = Ops::cmul(Ops::loaduf(pc), Ops::loaduf(st.w2 + k));
        const V b = Ops::cmul(Ops::loaduf(pb), Ops::loaduf(st.w1 + k));
        const V d = Ops::cmul(Ops::loaduf(pd), Ops::loaduf(st.w3 + k));
        const V t0 = Ops::addf(a, c);
        const V t1 = Ops::subf(a, c);
        const V t2 = Ops::addf(b, d);
        const V t3 = Ops::subf(b, d);
        const V it3 = Ops::mul_i(t3);
        Ops::storeuf(pa, Ops::addf(t0, t2));
        Ops::storeuf(pb, Ops::subf(t0, t2));
        if (!run.inverse) {
          Ops::storeuf(pc, Ops::subf(t1, it3));
          Ops::storeuf(pd, Ops::addf(t1, it3));
        } else {
          Ops::storeuf(pc, Ops::addf(t1, it3));
          Ops::storeuf(pd, Ops::subf(t1, it3));
        }
      }
    }
  }
}

}  // namespace rjf::dsp::simd
