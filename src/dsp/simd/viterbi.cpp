#include "dsp/simd/viterbi.h"

namespace rjf::dsp::simd {

bool viterbi_hard_acs(Isa isa, std::span<const std::uint8_t> coded,
                      std::uint64_t* survivors,
                      std::uint16_t* final_metrics) {
  const std::size_t n_steps = coded.size() / 2;
  switch (isa) {
    case Isa::kAvx2:
      if (detail::viterbi_hard_avx2(coded.data(), n_steps, survivors,
                                    final_metrics))
        return true;
      [[fallthrough]];
    case Isa::kSse42:
      return detail::viterbi_hard_sse42(coded.data(), n_steps, survivors,
                                        final_metrics);
    case Isa::kScalar:
      break;
  }
  return false;
}

bool viterbi_soft_acs(Isa isa, std::span<const float> llrs,
                      std::uint64_t* survivors, float* final_metrics) {
  const std::size_t n_steps = llrs.size() / 2;
  switch (isa) {
    case Isa::kAvx2:
      if (detail::viterbi_soft_avx2(llrs.data(), n_steps, survivors,
                                    final_metrics))
        return true;
      [[fallthrough]];
    case Isa::kSse42:
      return detail::viterbi_soft_sse42(llrs.data(), n_steps, survivors,
                                        final_metrics);
    case Isa::kScalar:
      break;
  }
  return false;
}

}  // namespace rjf::dsp::simd
