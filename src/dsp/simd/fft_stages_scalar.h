// Scalar radix-2 / radix-4 butterfly stages over interleaved re/im float
// arrays.  These are the reference bodies for the planned FFT: the plan
// runs them for every stage on the scalar path, and the SIMD kernels run
// them for stages whose quarter length is below the vector width.  The
// complex arithmetic is spelled out in float (not std::complex) so the
// reference and the vector kernels perform the same multiply/add
// sequence, keeping them within a few ulp of each other.
#pragma once

#include <cstddef>

namespace rjf::dsp::simd {

/// One twiddle-free radix-2 pass over adjacent pairs (used as the first
/// stage when log2(n) is odd; identical for forward and inverse).
inline void fft_radix2_stage(float* x, std::size_t n) {
  for (std::size_t i = 0; i < 2 * n; i += 4) {
    const float ar = x[i], ai = x[i + 1];
    const float br = x[i + 2], bi = x[i + 3];
    x[i] = ar + br;
    x[i + 1] = ai + bi;
    x[i + 2] = ar - br;
    x[i + 3] = ai - bi;
  }
}

/// One radix-4 pass with quarter length L over blocks of 4L complexes.
/// See dsp/simd/fft_kernels.h for the F0/F2/F1/F3 input ordering the
/// plain bit-reverse permutation produces.
inline void fft_radix4_stage(float* x, std::size_t n, std::size_t L,
                             const float* w1, const float* w2,
                             const float* w3, bool inverse) {
  for (std::size_t base = 0; base < 2 * n; base += 8 * L) {
    for (std::size_t k = 0; k < 2 * L; k += 2) {
      float* pa = x + base + k;
      float* pc = pa + 2 * L;  // F2
      float* pb = pa + 4 * L;  // F1
      float* pd = pa + 6 * L;  // F3
      const float ar = pa[0], ai = pa[1];
      float cr = pc[0], ci = pc[1];
      float br = pb[0], bi = pb[1];
      float dr = pd[0], di = pd[1];
      // Twiddle rotations: F1 by W^k, F2 by W^2k, F3 by W^3k.
      {
        const float wr = w2[k], wi = w2[k + 1];
        const float tr = cr * wr - ci * wi;
        ci = ci * wr + cr * wi;
        cr = tr;
      }
      {
        const float wr = w1[k], wi = w1[k + 1];
        const float tr = br * wr - bi * wi;
        bi = bi * wr + br * wi;
        br = tr;
      }
      {
        const float wr = w3[k], wi = w3[k + 1];
        const float tr = dr * wr - di * wi;
        di = di * wr + dr * wi;
        dr = tr;
      }
      const float t0r = ar + cr, t0i = ai + ci;
      const float t1r = ar - cr, t1i = ai - ci;
      const float t2r = br + dr, t2i = bi + di;
      const float t3r = br - dr, t3i = bi - di;
      pa[0] = t0r + t2r;
      pa[1] = t0i + t2i;
      pb[0] = t0r - t2r;
      pb[1] = t0i - t2i;
      if (!inverse) {
        // X[k+L] = t1 - i*t3, X[k+3L] = t1 + i*t3
        pc[0] = t1r + t3i;
        pc[1] = t1i - t3r;
        pd[0] = t1r - t3i;
        pd[1] = t1i + t3r;
      } else {
        pc[0] = t1r - t3i;
        pc[1] = t1i + t3r;
        pd[0] = t1r + t3i;
        pd[1] = t1i - t3r;
      }
    }
  }
}

}  // namespace rjf::dsp::simd
