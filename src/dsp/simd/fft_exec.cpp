#include "dsp/simd/fft_kernels.h"

namespace rjf::dsp::simd {

bool fft_exec(Isa isa, const FftKernelRun& run, float* x) {
  switch (isa) {
    case Isa::kAvx2:
      if (detail::fft_exec_avx2(run, x)) return true;
      [[fallthrough]];
    case Isa::kSse42:
      return detail::fft_exec_sse42(run, x);
    case Isa::kScalar:
      break;
  }
  return false;
}

}  // namespace rjf::dsp::simd
