#include "dsp/simd/dispatch.h"

#include <cstdlib>

namespace rjf::dsp::simd {
namespace {

Isa detect() noexcept {
  const char* veto = std::getenv("RJF_DISABLE_SIMD");
  if (veto != nullptr && veto[0] != '\0') return Isa::kScalar;
#if defined(RJF_SIMD_HAVE_AVX2) || defined(RJF_SIMD_HAVE_SSE42)
#if defined(__GNUC__) || defined(__clang__)
#if defined(RJF_SIMD_HAVE_AVX2)
  if (__builtin_cpu_supports("avx2")) return Isa::kAvx2;
#endif
#if defined(RJF_SIMD_HAVE_SSE42)
  if (__builtin_cpu_supports("sse4.2")) return Isa::kSse42;
#endif
#endif
#endif
  return Isa::kScalar;
}

}  // namespace

Isa active_isa() noexcept {
  static const Isa kActive = detect();
  return kActive;
}

Isa compiled_isa() noexcept {
#if defined(RJF_SIMD_HAVE_AVX2)
  return Isa::kAvx2;
#elif defined(RJF_SIMD_HAVE_SSE42)
  return Isa::kSse42;
#else
  return Isa::kScalar;
#endif
}

const char* isa_name(Isa isa) noexcept {
  switch (isa) {
    case Isa::kScalar: return "scalar";
    case Isa::kSse42: return "sse4.2";
    case Isa::kAvx2: return "avx2";
  }
  return "?";
}

}  // namespace rjf::dsp::simd
