// Arbitrary-ratio polyphase resampler.
//
// The paper's single most important analog imperfection is the sampling
// rate mismatch between the WiFi transmitter (20 MSPS per 802.11g) and the
// USRP receive chain (25 MSPS fixed by the UHD design). Figure 6's ~50%
// single-long-preamble detection rate is attributed directly to this
// mismatch, so the resampler is a first-class substrate here: every
// over-the-air waveform is resampled to the fabric rate before detection.
#pragma once

#include <cstddef>

#include "dsp/types.h"

namespace rjf::dsp {

/// Windowed-sinc fractional resampler (8-tap Hann-windowed kernel,
/// continuously evaluated at each output instant).
class Resampler {
 public:
  /// Converts a stream at `in_rate` Hz to `out_rate` Hz.
  Resampler(double in_rate, double out_rate);

  /// Resample a whole buffer (stateless convenience; pads edges with zeros).
  /// `fractional_delay` shifts the output sampling grid by that fraction of
  /// an input sample (0 <= d < 1) — used to model arbitrary timing offsets
  /// between transmitter and receiver sample clocks.
  [[nodiscard]] cvec resample(std::span<const cfloat> in,
                              double fractional_delay = 0.0) const;

  [[nodiscard]] double ratio() const noexcept { return ratio_; }

 private:
  double ratio_;  // out samples per in sample
};

/// One-shot helper.
[[nodiscard]] cvec resample(std::span<const cfloat> in, double in_rate,
                            double out_rate);

}  // namespace rjf::dsp
