#include "dsp/fft.h"

#include <cassert>

#include "dsp/fft_plan.h"

namespace rjf::dsp {

void fft(std::span<cfloat> x) {
  assert(is_pow2(x.size()));
  if (x.size() < 2) return;
  FftPlan::of(x.size()).forward(x.data());
}

void ifft(std::span<cfloat> x) {
  assert(is_pow2(x.size()));
  if (x.size() < 2) return;
  FftPlan::of(x.size()).inverse(x.data());
  const float inv_n = 1.0f / static_cast<float>(x.size());
  for (cfloat& s : x) s *= inv_n;
}

cvec fft_copy(std::span<const cfloat> x) {
  cvec out(x.begin(), x.end());
  fft(out);
  return out;
}

cvec ifft_copy(std::span<const cfloat> x) {
  cvec out(x.begin(), x.end());
  ifft(out);
  return out;
}

}  // namespace rjf::dsp
