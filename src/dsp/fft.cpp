#include "dsp/fft.h"

#include <cassert>
#include <cmath>
#include <numbers>

namespace rjf::dsp {
namespace {

void bit_reverse_permute(std::span<cfloat> x) {
  const std::size_t n = x.size();
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(x[i], x[j]);
  }
}

void transform(std::span<cfloat> x, bool inverse) {
  const std::size_t n = x.size();
  assert(is_pow2(n));
  bit_reverse_permute(x);
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double angle =
        (inverse ? 2.0 : -2.0) * std::numbers::pi / static_cast<double>(len);
    const cfloat wlen{static_cast<float>(std::cos(angle)),
                      static_cast<float>(std::sin(angle))};
    for (std::size_t i = 0; i < n; i += len) {
      cfloat w{1.0f, 0.0f};
      for (std::size_t k = 0; k < len / 2; ++k) {
        const cfloat u = x[i + k];
        const cfloat v = x[i + k + len / 2] * w;
        x[i + k] = u + v;
        x[i + k + len / 2] = u - v;
        w *= wlen;
      }
    }
  }
}

}  // namespace

void fft(std::span<cfloat> x) { transform(x, /*inverse=*/false); }

void ifft(std::span<cfloat> x) {
  transform(x, /*inverse=*/true);
  const float inv_n = 1.0f / static_cast<float>(x.size());
  for (cfloat& s : x) s *= inv_n;
}

cvec fft_copy(std::span<const cfloat> x) {
  cvec out(x.begin(), x.end());
  fft(out);
  return out;
}

cvec ifft_copy(std::span<const cfloat> x) {
  cvec out(x.begin(), x.end());
  ifft(out);
  return out;
}

}  // namespace rjf::dsp
