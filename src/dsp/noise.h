// White Gaussian noise sources.
//
// Used both as the channel's thermal-noise model and as the jammer's
// 25 MHz WGN waveform preset (paper §2.4, waveform (i)).
#pragma once

#include <cstddef>

#include "dsp/rng.h"
#include "dsp/types.h"

namespace rjf::dsp {

/// Streaming complex WGN source with fixed mean power.
class NoiseSource {
 public:
  /// `power` is E[|x|^2] of generated samples.
  explicit NoiseSource(double power = 1.0,
                       std::uint64_t seed = 0x5eedULL) noexcept;

  [[nodiscard]] cfloat sample() noexcept;
  [[nodiscard]] cvec block(std::size_t n);

  /// Add noise of this source's power onto an existing buffer.
  void add_to(std::span<cfloat> x) noexcept;

  [[nodiscard]] double power() const noexcept { return power_; }
  void set_power(double power) noexcept { power_ = power; }

 private:
  double power_;
  Xoshiro256 rng_;
};

/// Convenience: buffer of complex WGN with the requested mean power.
[[nodiscard]] cvec make_wgn(std::size_t n, double power, std::uint64_t seed);

}  // namespace rjf::dsp
