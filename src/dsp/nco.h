// Numerically controlled oscillator and complex mixer.
//
// Models the fine-frequency shift stages of the DDC/DUC chains and lets
// experiments introduce carrier frequency offsets between stations.
#pragma once

#include <cstdint>

#include "dsp/types.h"

namespace rjf::dsp {

class Nco {
 public:
  /// `freq_hz` may be negative; `sample_rate_hz` must be positive.
  Nco(double freq_hz, double sample_rate_hz);

  /// Current phasor, then advance one sample.
  [[nodiscard]] cfloat step() noexcept;

  /// Mix a block: out[n] = in[n] * e^{j phase[n]} (stateful).
  [[nodiscard]] cvec mix(std::span<const cfloat> in);

  void set_frequency(double freq_hz) noexcept;
  [[nodiscard]] double frequency() const noexcept;
  void reset_phase() noexcept { phase_acc_ = 0; }

 private:
  double sample_rate_;
  std::uint64_t phase_acc_ = 0;   // 64-bit phase accumulator
  std::uint64_t phase_inc_ = 0;
  bool negative_ = false;
};

/// One-shot frequency shift of a buffer starting at phase 0.
[[nodiscard]] cvec frequency_shift(std::span<const cfloat> in, double freq_hz,
                                   double sample_rate_hz);

}  // namespace rjf::dsp
