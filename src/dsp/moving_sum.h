// Fixed-length running sums.
//
// The FPGA energy differentiator (paper Fig. 4) is built around a
// 32-sample moving sum implemented as y[n] = y[n-1] + x[n] - x[n-N].
// This header provides that exact recurrence for 64-bit integer energy
// values (fabric domain) and a float variant for host-side analysis.
#pragma once

#include <cstdint>
#include <vector>

namespace rjf::dsp {

template <typename T>
class MovingSum {
 public:
  explicit MovingSum(std::size_t length)
      : buffer_(length == 0 ? 1 : length, T{}) {}

  /// Push one value; returns the updated sum over the last `length` values.
  T push(T x) noexcept {
    sum_ += x - buffer_[pos_];
    buffer_[pos_] = x;
    pos_ = (pos_ + 1) % buffer_.size();
    return sum_;
  }

  [[nodiscard]] T sum() const noexcept { return sum_; }
  [[nodiscard]] std::size_t length() const noexcept { return buffer_.size(); }

  void reset() noexcept {
    std::fill(buffer_.begin(), buffer_.end(), T{});
    sum_ = T{};
    pos_ = 0;
  }

 private:
  std::vector<T> buffer_;
  T sum_{};
  std::size_t pos_ = 0;
};

using MovingSumU64 = MovingSum<std::uint64_t>;
using MovingSumF = MovingSum<double>;

/// Fixed delay line (the Z^-64 block in Fig. 4).
template <typename T>
class DelayLine {
 public:
  explicit DelayLine(std::size_t delay) : buffer_(delay == 0 ? 1 : delay, T{}) {}

  /// Push x, get the value pushed `delay` steps ago.
  T push(T x) noexcept {
    const T out = buffer_[pos_];
    buffer_[pos_] = x;
    pos_ = (pos_ + 1) % buffer_.size();
    return out;
  }

  [[nodiscard]] std::size_t delay() const noexcept { return buffer_.size(); }

  void reset() noexcept {
    std::fill(buffer_.begin(), buffer_.end(), T{});
    pos_ = 0;
  }

 private:
  std::vector<T> buffer_;
  std::size_t pos_ = 0;
};

}  // namespace rjf::dsp
