// Per-size FFT plans: precomputed bit-reverse permutation and
// double-generated twiddle tables, shared process-wide.
//
// The legacy transform in fft.cpp regenerated twiddles per call with a
// recursive float update (w *= wlen), which both costs time and drifts:
// the rounding error of the repeated multiply accumulates across a long
// butterfly chain.  A plan generates every twiddle independently in
// double precision once, rounds to float once, and reuses the tables for
// the life of the process — fft()/ifft() in fft.h are now thin wrappers
// over FftPlan::of(n).
//
// Execution is a radix-4 decimation-in-time main loop (radix-2 first pass
// when log2 n is odd) over the plain bit-reverse order, dispatched to the
// SSE4.2/AVX2 butterfly kernels in dsp/simd when available; the scalar
// path runs the same stage bodies (dsp/simd/fft_stages_scalar.h) with the
// same tables.  Plans are immutable after construction and safe to share
// across threads.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "dsp/simd/fft_kernels.h"
#include "dsp/types.h"

namespace rjf::dsp {

class FftPlan {
 public:
  /// Process-wide plan for an n-point transform (n a power of two).
  /// First call for a size builds the plan; later calls are lock-free.
  static const FftPlan& of(std::size_t n);

  [[nodiscard]] std::size_t size() const noexcept { return n_; }

  /// In-place transforms over interleaved std::complex<float> data.
  /// inverse() is unscaled (callers apply 1/N, matching ifft()).
  void forward(cfloat* x) const;
  void inverse(cfloat* x) const;

  /// The plain bit-reverse permutation (exposed for tests).
  void permute(cfloat* x) const;

 private:
  explicit FftPlan(std::size_t n);
  void run(cfloat* x, bool inverse) const;

  struct Stage {
    std::size_t quarter;  // L
    // Interleaved re/im, 2L floats each; W = exp(-2*pi*i/(4L)) forward,
    // conjugate for inverse.  w1 = W^k, w2 = W^2k, w3 = W^3k.
    std::vector<float> fwd1, fwd2, fwd3;
    std::vector<float> inv1, inv2, inv3;
  };

  std::size_t n_ = 0;
  bool radix2_first_ = false;
  std::vector<std::pair<std::uint32_t, std::uint32_t>> swaps_;
  std::vector<Stage> stages_;
  // Kernel-facing views of the stage tables (see dsp/simd/fft_kernels.h).
  std::vector<simd::FftStageView> fwd_views_;
  std::vector<simd::FftStageView> inv_views_;
};

}  // namespace rjf::dsp
