// Planned complex FFT (radix-4 main loop, see dsp/fft_plan.h).
//
// Sized for the OFDM work in this repo: 64-point (802.11a/g) and
// 1024-point (802.16e OFDMA). Any power-of-two length is supported.
// These wrappers fetch the process-wide per-size plan; callers with a
// hot loop over one size can hold FftPlan::of(n) directly.
#pragma once

#include <cstddef>

#include "dsp/types.h"

namespace rjf::dsp {

/// In-place forward DFT. `x.size()` must be a power of two.
void fft(std::span<cfloat> x);

/// In-place inverse DFT with 1/N normalisation.
void ifft(std::span<cfloat> x);

/// Out-of-place helpers.
[[nodiscard]] cvec fft_copy(std::span<const cfloat> x);
[[nodiscard]] cvec ifft_copy(std::span<const cfloat> x);

/// True if n is a nonzero power of two.
[[nodiscard]] constexpr bool is_pow2(std::size_t n) noexcept {
  return n != 0 && (n & (n - 1)) == 0;
}

}  // namespace rjf::dsp
