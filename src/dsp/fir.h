// FIR filtering and classic windowed-sinc design.
//
// Used for the DDC/DUC chain models (halfband / anti-alias stages) and
// for band-limiting jamming waveforms.
#pragma once

#include <cstddef>
#include <vector>

#include "dsp/types.h"

namespace rjf::dsp {

/// Streaming complex-in / real-taps FIR with persistent state.
class FirFilter {
 public:
  explicit FirFilter(std::vector<float> taps);

  /// Push one sample, get one filtered sample.
  [[nodiscard]] cfloat process(cfloat in) noexcept;

  /// Filter a block (stateful across calls).
  [[nodiscard]] cvec process_block(std::span<const cfloat> in);

  void reset() noexcept;

  [[nodiscard]] const std::vector<float>& taps() const noexcept { return taps_; }
  [[nodiscard]] std::size_t group_delay_samples() const noexcept {
    return taps_.size() / 2;
  }

 private:
  std::vector<float> taps_;
  cvec history_;  // circular delay line
  std::size_t pos_ = 0;
};

/// Windowed-sinc (Hamming) lowpass prototype.
/// `cutoff` is the normalised cutoff in cycles/sample, 0 < cutoff < 0.5.
/// `num_taps` is forced odd so the filter has integral group delay.
[[nodiscard]] std::vector<float> design_lowpass(double cutoff,
                                                std::size_t num_taps);

/// Decimating FIR: lowpass at 0.5/factor then keep every factor-th sample.
class Decimator {
 public:
  Decimator(std::size_t factor, std::size_t num_taps = 63);

  [[nodiscard]] cvec process_block(std::span<const cfloat> in);
  [[nodiscard]] std::size_t factor() const noexcept { return factor_; }
  void reset() noexcept;

 private:
  std::size_t factor_;
  FirFilter filter_;
  std::size_t phase_ = 0;
};

/// Interpolating FIR: zero-stuff by `factor` then lowpass (gain-compensated).
class Interpolator {
 public:
  Interpolator(std::size_t factor, std::size_t num_taps = 63);

  [[nodiscard]] cvec process_block(std::span<const cfloat> in);
  [[nodiscard]] std::size_t factor() const noexcept { return factor_; }
  void reset() noexcept;

 private:
  std::size_t factor_;
  FirFilter filter_;
};

}  // namespace rjf::dsp
