#include "dsp/fft_plan.h"

#include <atomic>
#include <cassert>
#include <cmath>
#include <memory>
#include <mutex>
#include <numbers>

#include "dsp/fft.h"
#include "dsp/simd/dispatch.h"
#include "dsp/simd/fft_stages_scalar.h"

namespace rjf::dsp {
namespace {

constexpr std::size_t kMaxLog2 = 31;

unsigned log2_of(std::size_t n) noexcept {
  unsigned lg = 0;
  while ((std::size_t{1} << lg) < n) ++lg;
  return lg;
}

}  // namespace

FftPlan::FftPlan(std::size_t n) : n_(n) {
  assert(is_pow2(n));
  const unsigned lg = log2_of(n);

  // Plain bit-reverse permutation, stored as the swap list the per-call
  // loop in the legacy fft.cpp used to recompute every transform.
  swaps_.reserve(n / 2);
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j)
      swaps_.emplace_back(static_cast<std::uint32_t>(i),
                          static_cast<std::uint32_t>(j));
  }

  radix2_first_ = (lg % 2) != 0;
  // Radix-4 stages: quarter length L starts at 1 (even log2 n) or 2 (after
  // the radix-2 first pass) and grows 4x per stage up to n/4.
  const double two_pi = 2.0 * std::numbers::pi;
  for (std::size_t L = radix2_first_ ? 2 : 1; 4 * L <= n; L *= 4) {
    Stage st;
    st.quarter = L;
    st.fwd1.resize(2 * L);
    st.fwd2.resize(2 * L);
    st.fwd3.resize(2 * L);
    st.inv1.resize(2 * L);
    st.inv2.resize(2 * L);
    st.inv3.resize(2 * L);
    const double step = two_pi / static_cast<double>(4 * L);
    for (std::size_t k = 0; k < L; ++k) {
      // Each twiddle from its own double-precision sin/cos — no recursive
      // float accumulation.
      const double a1 = step * static_cast<double>(k);
      const double a2 = step * static_cast<double>(2 * k);
      const double a3 = step * static_cast<double>(3 * k);
      st.fwd1[2 * k] = static_cast<float>(std::cos(a1));
      st.fwd1[2 * k + 1] = static_cast<float>(-std::sin(a1));
      st.fwd2[2 * k] = static_cast<float>(std::cos(a2));
      st.fwd2[2 * k + 1] = static_cast<float>(-std::sin(a2));
      st.fwd3[2 * k] = static_cast<float>(std::cos(a3));
      st.fwd3[2 * k + 1] = static_cast<float>(-std::sin(a3));
      st.inv1[2 * k] = st.fwd1[2 * k];
      st.inv1[2 * k + 1] = -st.fwd1[2 * k + 1];
      st.inv2[2 * k] = st.fwd2[2 * k];
      st.inv2[2 * k + 1] = -st.fwd2[2 * k + 1];
      st.inv3[2 * k] = st.fwd3[2 * k];
      st.inv3[2 * k + 1] = -st.fwd3[2 * k + 1];
    }
    stages_.push_back(std::move(st));
  }

  fwd_views_.reserve(stages_.size());
  inv_views_.reserve(stages_.size());
  for (const Stage& st : stages_) {
    fwd_views_.push_back({st.quarter, st.fwd1.data(), st.fwd2.data(),
                          st.fwd3.data()});
    inv_views_.push_back({st.quarter, st.inv1.data(), st.inv2.data(),
                          st.inv3.data()});
  }
}

const FftPlan& FftPlan::of(std::size_t n) {
  assert(is_pow2(n));
  // Lock-free fast path: one atomic slot per power of two.  Slots are
  // written once under the mutex and never change afterwards.
  static std::atomic<const FftPlan*> slots[kMaxLog2 + 1] = {};
  static std::mutex build_mutex;
  const unsigned lg = log2_of(n);
  assert(lg <= kMaxLog2 && (std::size_t{1} << lg) == n);
  const FftPlan* plan = slots[lg].load(std::memory_order_acquire);
  if (plan == nullptr) {
    std::scoped_lock lock(build_mutex);
    plan = slots[lg].load(std::memory_order_relaxed);
    if (plan == nullptr) {
      plan = new FftPlan(n);  // lives for the process, like the slot array
      slots[lg].store(plan, std::memory_order_release);
    }
  }
  return *plan;
}

void FftPlan::permute(cfloat* x) const {
  for (const auto& [i, j] : swaps_) std::swap(x[i], x[j]);
}

void FftPlan::run(cfloat* x, bool inverse) const {
  permute(x);
  float* xf = reinterpret_cast<float*>(x);
  const simd::FftKernelRun krun{
      n_, radix2_first_, inverse,
      inverse ? inv_views_.data() : fwd_views_.data(),
      stages_.size()};
  if (simd::fft_exec(simd::active_isa(), krun, xf)) return;
  // Scalar path: same stage bodies and tables as the vector kernels.
  if (radix2_first_) simd::fft_radix2_stage(xf, n_);
  for (std::size_t s = 0; s < stages_.size(); ++s) {
    const simd::FftStageView& st = krun.stages[s];
    simd::fft_radix4_stage(xf, n_, st.quarter, st.w1, st.w2, st.w3, inverse);
  }
}

void FftPlan::forward(cfloat* x) const { run(x, /*inverse=*/false); }
void FftPlan::inverse(cfloat* x) const { run(x, /*inverse=*/true); }

}  // namespace rjf::dsp
