#include "dsp/nco.h"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace rjf::dsp {

Nco::Nco(double freq_hz, double sample_rate_hz) : sample_rate_(sample_rate_hz) {
  if (sample_rate_hz <= 0.0)
    throw std::invalid_argument("Nco: sample rate must be positive");
  set_frequency(freq_hz);
}

void Nco::set_frequency(double freq_hz) noexcept {
  negative_ = freq_hz < 0.0;
  const double f = std::abs(freq_hz);
  phase_inc_ = static_cast<std::uint64_t>(
      (f / sample_rate_) * 18446744073709551616.0 /* 2^64 */);
}

double Nco::frequency() const noexcept {
  const double f =
      static_cast<double>(phase_inc_) / 18446744073709551616.0 * sample_rate_;
  return negative_ ? -f : f;
}

cfloat Nco::step() noexcept {
  const double phase = static_cast<double>(phase_acc_) / 18446744073709551616.0 *
                       2.0 * std::numbers::pi;
  phase_acc_ += phase_inc_;
  const double signed_phase = negative_ ? -phase : phase;
  return cfloat{static_cast<float>(std::cos(signed_phase)),
                static_cast<float>(std::sin(signed_phase))};
}

cvec Nco::mix(std::span<const cfloat> in) {
  cvec out(in.size());
  for (std::size_t n = 0; n < in.size(); ++n) out[n] = in[n] * step();
  return out;
}

cvec frequency_shift(std::span<const cfloat> in, double freq_hz,
                     double sample_rate_hz) {
  Nco nco(freq_hz, sample_rate_hz);
  return nco.mix(in);
}

}  // namespace rjf::dsp
