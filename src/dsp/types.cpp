#include "dsp/types.h"

#include <algorithm>
#include <cmath>

namespace rjf::dsp {

std::int16_t to_q15(float x) noexcept {
  const float scaled = x * 32768.0f;
  const float clamped = std::clamp(scaled, -32768.0f, 32767.0f);
  return static_cast<std::int16_t>(std::lrintf(clamped));
}

float from_q15(std::int16_t x) noexcept { return static_cast<float>(x) / 32768.0f; }

IQ16 to_iq16(cfloat x) noexcept { return IQ16{to_q15(x.real()), to_q15(x.imag())}; }

cfloat from_iq16(IQ16 x) noexcept { return cfloat{from_q15(x.i), from_q15(x.q)}; }

iqvec to_iq16(std::span<const cfloat> in) {
  iqvec out(in.size());
  std::transform(in.begin(), in.end(), out.begin(),
                 [](cfloat s) { return to_iq16(s); });
  return out;
}

cvec from_iq16(std::span<const IQ16> in) {
  cvec out(in.size());
  std::transform(in.begin(), in.end(), out.begin(),
                 [](IQ16 s) { return from_iq16(s); });
  return out;
}

}  // namespace rjf::dsp
