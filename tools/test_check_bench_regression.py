#!/usr/bin/env python3
"""Self-test for tools/check_bench_regression.py (the CI perf gate).

Pytest-style test functions against synthetic BENCH fixtures, with a
zero-dependency runner so CI can execute it directly:

  python3 tools/test_check_bench_regression.py     # discovers test_* below

If pytest is available it will also collect these functions unchanged.
Every test drives the real CLI in a subprocess, so the exit codes the CI
job branches on are exactly what is asserted here.
"""

from __future__ import annotations

import json
import pathlib
import subprocess
import sys
import tempfile

SCRIPT = pathlib.Path(__file__).resolve().parent / "check_bench_regression.py"


def run_gate(*argv):
    """Run the gate; return (exit_code, stdout+stderr)."""
    proc = subprocess.run(
        [sys.executable, str(SCRIPT), *argv],
        capture_output=True, text=True)
    return proc.returncode, proc.stdout + proc.stderr


def bench_file(tmp, name, **values):
    path = pathlib.Path(tmp) / name
    path.write_text(json.dumps(values), encoding="utf-8")
    return str(path)


# -- relative 10%-drop gate (--key/--baseline) ------------------------------

def test_drop_within_floor_passes():
    with tempfile.TemporaryDirectory() as tmp:
        base = bench_file(tmp, "base.json", rate=100.0)
        fresh = bench_file(tmp, "fresh.json", rate=91.0)  # -9% < 10% drop
        code, out = run_gate("--baseline", base, "--fresh", fresh,
                             "--key", "rate")
        assert code == 0, out
        assert "[ok] rate" in out, out


def test_drop_at_exact_floor_passes():
    # floor is exclusive: fresh == 0.90 * baseline is NOT a regression.
    with tempfile.TemporaryDirectory() as tmp:
        base = bench_file(tmp, "base.json", rate=100.0)
        fresh = bench_file(tmp, "fresh.json", rate=90.0)
        code, out = run_gate("--baseline", base, "--fresh", fresh,
                             "--key", "rate")
        assert code == 0, out


def test_drop_beyond_floor_fails():
    with tempfile.TemporaryDirectory() as tmp:
        base = bench_file(tmp, "base.json", rate=100.0)
        fresh = bench_file(tmp, "fresh.json", rate=89.0)  # -11% > 10% drop
        code, out = run_gate("--baseline", base, "--fresh", fresh,
                             "--key", "rate")
        assert code == 1, out
        assert "[FAIL] rate" in out, out


def test_custom_max_drop_widens_floor():
    with tempfile.TemporaryDirectory() as tmp:
        base = bench_file(tmp, "base.json", rate=100.0)
        fresh = bench_file(tmp, "fresh.json", rate=75.0)
        code, out = run_gate("--baseline", base, "--fresh", fresh,
                             "--key", "rate", "--max-drop", "0.30")
        assert code == 0, out


def test_faster_than_baseline_never_fails():
    with tempfile.TemporaryDirectory() as tmp:
        base = bench_file(tmp, "base.json", rate=100.0)
        fresh = bench_file(tmp, "fresh.json", rate=250.0)
        code, out = run_gate("--baseline", base, "--fresh", fresh,
                             "--key", "rate")
        assert code == 0, out


def test_key_missing_from_baseline_is_skipped():
    # A brand-new benchmark has no committed baseline yet: skip, not fail.
    with tempfile.TemporaryDirectory() as tmp:
        base = bench_file(tmp, "base.json", other=1.0)
        fresh = bench_file(tmp, "fresh.json", rate=1.0)
        code, out = run_gate("--baseline", base, "--fresh", fresh,
                             "--key", "rate")
        assert code == 0, out
        assert "[skip] rate" in out, out


def test_key_missing_from_fresh_fails():
    # The baseline promises a rate the fresh run never measured.
    with tempfile.TemporaryDirectory() as tmp:
        base = bench_file(tmp, "base.json", rate=100.0)
        fresh = bench_file(tmp, "fresh.json", other=1.0)
        code, out = run_gate("--baseline", base, "--fresh", fresh,
                             "--key", "rate")
        assert code == 1, out
        assert "missing from fresh run" in out, out


def test_nonpositive_baseline_is_skipped():
    with tempfile.TemporaryDirectory() as tmp:
        base = bench_file(tmp, "base.json", rate=0.0)
        fresh = bench_file(tmp, "fresh.json", rate=123.0)
        code, out = run_gate("--baseline", base, "--fresh", fresh,
                             "--key", "rate")
        assert code == 0, out
        assert "[skip] rate" in out, out


# -- absolute floors (--min-value) ------------------------------------------

def test_min_value_floor_holds():
    with tempfile.TemporaryDirectory() as tmp:
        fresh = bench_file(tmp, "fresh.json",
                           sweep_deterministic=1, sweep_speedup=2.4)
        code, out = run_gate("--fresh", fresh,
                             "--min-value", "sweep_deterministic=1",
                             "--min-value", "sweep_speedup=0.9")
        assert code == 0, out


def test_min_value_below_floor_fails():
    with tempfile.TemporaryDirectory() as tmp:
        fresh = bench_file(tmp, "fresh.json", sweep_deterministic=0)
        code, out = run_gate("--fresh", fresh,
                             "--min-value", "sweep_deterministic=1")
        assert code == 1, out
        assert "[FAIL] sweep_deterministic" in out, out


def test_min_value_missing_key_fails():
    # An unmeasured invariant is a failure, not a skip.
    with tempfile.TemporaryDirectory() as tmp:
        fresh = bench_file(tmp, "fresh.json", other=1)
        code, out = run_gate("--fresh", fresh,
                             "--min-value", "sweep_deterministic=1")
        assert code == 1, out
        assert "missing from fresh run" in out, out


# -- absolute ceilings (--max-value) ----------------------------------------

def test_max_value_ceiling_holds():
    with tempfile.TemporaryDirectory() as tmp:
        fresh = bench_file(tmp, "fresh.json", fault_zero_fault_mismatch=0)
        code, out = run_gate("--fresh", fresh,
                             "--max-value", "fault_zero_fault_mismatch=0")
        assert code == 0, out


def test_max_value_above_ceiling_fails():
    with tempfile.TemporaryDirectory() as tmp:
        fresh = bench_file(tmp, "fresh.json", fault_zero_fault_mismatch=3)
        code, out = run_gate("--fresh", fresh,
                             "--max-value", "fault_zero_fault_mismatch=0")
        assert code == 1, out
        assert "[FAIL] fault_zero_fault_mismatch" in out, out


def test_max_value_missing_key_fails():
    with tempfile.TemporaryDirectory() as tmp:
        fresh = bench_file(tmp, "fresh.json", other=0)
        code, out = run_gate("--fresh", fresh,
                             "--max-value", "fault_zero_fault_mismatch=0")
        assert code == 1, out


# -- CLI contract ------------------------------------------------------------

def test_mixed_pass_and_fail_fails_overall():
    with tempfile.TemporaryDirectory() as tmp:
        base = bench_file(tmp, "base.json", fast=100.0, slow=100.0)
        fresh = bench_file(tmp, "fresh.json", fast=150.0, slow=50.0)
        code, out = run_gate("--baseline", base, "--fresh", fresh,
                             "--key", "fast", "--key", "slow")
        assert code == 1, out
        assert "[ok] fast" in out and "[FAIL] slow" in out, out


def test_key_without_baseline_is_usage_error():
    with tempfile.TemporaryDirectory() as tmp:
        fresh = bench_file(tmp, "fresh.json", rate=1.0)
        code, out = run_gate("--fresh", fresh, "--key", "rate")
        assert code == 2, out


def test_nothing_to_check_is_usage_error():
    with tempfile.TemporaryDirectory() as tmp:
        fresh = bench_file(tmp, "fresh.json", rate=1.0)
        code, out = run_gate("--fresh", fresh)
        assert code == 2, out


def test_malformed_bound_is_usage_error():
    with tempfile.TemporaryDirectory() as tmp:
        fresh = bench_file(tmp, "fresh.json", rate=1.0)
        code, out = run_gate("--fresh", fresh, "--min-value", "rate")
        assert code == 2, out
        code, out = run_gate("--fresh", fresh, "--min-value", "rate=fast")
        assert code == 2, out


def main() -> int:
    tests = [(name, fn) for name, fn in sorted(globals().items())
             if name.startswith("test_") and callable(fn)]
    failures = 0
    for name, fn in tests:
        try:
            fn()
            print(f"  ok {name}")
        except AssertionError as exc:
            failures += 1
            print(f"  FAIL {name}: {exc}")
    print(f"test_check_bench_regression: {len(tests) - failures}/{len(tests)}"
          " passed")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
