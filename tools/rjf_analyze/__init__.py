"""rjf_analyze: multi-pass static analysis for the reactive-jamming
framework tree. Run as `python3 tools/rjf_analyze --root .`; see
DESIGN.md section 15 for the architecture."""
