"""Package entry point: `python3 tools/rjf_analyze [options]`.

When run as `python3 <dir>`, sys.path[0] is the package directory itself,
so the flat intra-package imports (`from base import ...`) resolve. When
run as `python3 -m`, make sure the package dir is importable too.
"""

import pathlib
import sys

_HERE = str(pathlib.Path(__file__).resolve().parent)
if _HERE not in sys.path:
    sys.path.insert(0, _HERE)

from cli import main  # noqa: E402

if __name__ == "__main__":
    sys.exit(main())
