"""Pass protocol, findings, and the analysis context shared by passes."""

from __future__ import annotations

import pathlib

from lexer import FileCache


class Finding:
    """One diagnostic: file:line, pass-qualified rule, human message."""

    __slots__ = ("rel", "line", "pass_id", "rule", "message")

    def __init__(self, rel, line, pass_id, rule, message):
        self.rel = str(rel)
        self.line = int(line)
        self.pass_id = pass_id
        self.rule = rule
        self.message = message

    def key(self):
        return (self.rel, self.line, self.pass_id, self.rule)

    def __repr__(self):
        return f"{self.rel}:{self.line}: [{self.pass_id}.{self.rule}]"

    def as_dict(self):
        return {
            "file": self.rel,
            "line": self.line,
            "pass": self.pass_id,
            "rule": self.rule,
            "message": self.message,
        }


class PassResult:
    def __init__(self, pass_id):
        self.pass_id = pass_id
        self.findings: list[Finding] = []
        self.files_scanned = 0
        self.stats: dict = {}
        self.errors: list[str] = []  # configuration problems (exit 2)

    def add(self, rel, line, rule, message):
        self.findings.append(Finding(rel, line, self.pass_id, rule, message))


class Context:
    """What a pass gets to look at: the repo root, the lexed-file cache,
    and (when present) the CMake compile database."""

    def __init__(self, root: pathlib.Path, compdb=None):
        self.root = pathlib.Path(root).resolve()
        self.files = FileCache(self.root)
        self.compdb = compdb  # compdb.CompileDb or None

    def src_files(self, *subdirs):
        """All .h/.cpp files under root/<subdir>/ (default: src/), sorted.

        When a compile database is loaded, any of its translation units
        that live under the requested subtrees are unioned in, so the
        analyzer's universe can never silently lag behind the build's.
        """
        roots = [self.root / s for s in (subdirs or ("src",))]
        seen = set()
        for base in roots:
            if not base.is_dir():
                continue
            for p in sorted(base.glob("**/*")):
                if p.suffix in (".h", ".cpp") and p.is_file():
                    seen.add(p.resolve())
        if self.compdb is not None:
            for tu in self.compdb.translation_units():
                for base in roots:
                    if tu.is_relative_to(base):
                        seen.add(tu)
        return sorted(seen)


class Pass:
    """Base class. Subclasses set pass_id/title and implement run() plus
    self_test(); rules() feeds --list-rules and the report rule table."""

    pass_id = "?"
    title = "?"

    def rules(self):
        raise NotImplementedError

    def run(self, ctx: Context) -> PassResult:
        raise NotImplementedError

    def self_test(self) -> int:
        """Return 0 on success, nonzero on failure (prints its own story)."""
        raise NotImplementedError
