"""Command-line driver for the rjf_analyze suite.

Usage:
  python3 tools/rjf_analyze --root . [options]

Options:
  --root DIR              repository root (default: cwd)
  --pass a,b,...          run only the named passes (default: all)
  --self-test             run every pass's seeded-violation self-test
  --list-rules            print the pass/rule table and exit
  --report FILE           write the machine-readable JSON report
  --compile-commands FILE explicit compile_commands.json (default: probe
                          build/, build-scalar/, build-debug/)

Exit codes: 0 clean, 1 findings, 2 configuration error.
"""

from __future__ import annotations

import argparse
import pathlib
import sys

import compdb as compdb_mod
from base import Context
from fabric_pass import FabricPass
from layering_pass import LayeringPass
from realtime_pass import RealtimePass
from seed_pass import SeedPass
import report as report_mod

ALL_PASSES = (FabricPass, LayeringPass, SeedPass, RealtimePass)


def _select_passes(spec):
    registry = {cls.pass_id: cls for cls in ALL_PASSES}
    if not spec:
        return [cls() for cls in ALL_PASSES]
    out = []
    for pid in spec.split(","):
        pid = pid.strip()
        if pid not in registry:
            raise SystemExit(
                f"rjf_analyze: unknown pass '{pid}' "
                f"(known: {', '.join(sorted(registry))})")
        out.append(registry[pid]())
    return out


def main(argv=None):
    ap = argparse.ArgumentParser(
        prog="rjf_analyze",
        description="Multi-pass static analysis for the reactive-jamming "
                    "framework tree (fabric lint, layering DAG, seed "
                    "discipline, realtime safety).")
    ap.add_argument("--root", default=".", help="repository root")
    ap.add_argument("--pass", dest="passes", default="",
                    help="comma-separated pass ids (default: all)")
    ap.add_argument("--self-test", action="store_true",
                    help="run seeded-violation self-tests and exit")
    ap.add_argument("--list-rules", action="store_true",
                    help="print the pass/rule table and exit")
    ap.add_argument("--report", default="",
                    help="write machine-readable JSON report here")
    ap.add_argument("--compile-commands", default="",
                    help="explicit compile_commands.json path")
    args = ap.parse_args(argv)

    passes = _select_passes(args.passes)

    if args.list_rules:
        for p in passes:
            print(f"{p.pass_id}: {p.title}")
            for rule, desc in sorted(p.rules().items()):
                print(f"  {p.pass_id}.{rule:<24} {desc}")
        return 0

    if args.self_test:
        failures = 0
        for p in passes:
            print(f"self-test: {p.pass_id} ({p.title})")
            failures += p.self_test()
        if failures:
            print(f"rjf_analyze: SELF-TEST FAILED ({failures} failure(s))")
            return 1
        print(f"rjf_analyze: self-test OK ({len(passes)} pass(es))")
        return 0

    root = pathlib.Path(args.root).resolve()
    if not (root / "src").is_dir():
        print(f"rjf_analyze: no src/ under {root} — wrong --root?",
              file=sys.stderr)
        return 2

    try:
        db = compdb_mod.load(root, args.compile_commands or None)
    except FileNotFoundError as exc:
        print(f"rjf_analyze: compile database not found: {exc}",
              file=sys.stderr)
        return 2

    ctx = Context(root, compdb=db)
    if db is None:
        print("rjf_analyze: no compile_commands.json found; "
              "falling back to globbing src/")

    results = []
    config_errors = []
    for p in passes:
        result = p.run(ctx)
        results.append((p, result))
        config_errors.extend(f"[{p.pass_id}] {e}" for e in result.errors)

    rep = report_mod.build_report(root, db.path if db else None, results)
    if args.report:
        report_mod.write_report(args.report, rep)

    total = 0
    for p, result in results:
        n = len(result.findings)
        total += n
        stat_bits = []
        if "subsystem_edges_observed" in result.stats:
            stat_bits.append(
                f"{len(result.stats['subsystem_edges_observed'])} layer edges")
        if "closure_functions" in result.stats:
            stat_bits.append(
                f"closure of {result.stats['closure_functions']} functions")
        extra = f" ({', '.join(stat_bits)})" if stat_bits else ""
        print(f"[{p.pass_id}] {result.files_scanned} files, "
              f"{n} finding(s){extra}")
        for f in sorted(result.findings, key=lambda f: f.key()):
            print(f"  {f.rel}:{f.line}: [{f.pass_id}.{f.rule}] {f.message}")

    if config_errors:
        for err in config_errors:
            print(f"rjf_analyze: config error: {err}", file=sys.stderr)
        return 2
    if total:
        print(f"rjf_analyze: {total} finding(s)")
        return 1
    print("rjf_analyze: clean")
    return 0
