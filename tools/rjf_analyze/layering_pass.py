"""Layering-DAG pass: the include graph must match tools/layering.json.

The HW/SW split this framework models (fabric vs. host, producer vs.
consumer side of the telemetry ring) is a cross-file property the type
system cannot express: nothing stops a convenience #include from welding
the fixed-point fabric model to a host-side float subsystem. This pass
makes the boundary a checked artifact:

  * tools/layering.json declares, per src/ subsystem, which other
    subsystems it may include — optionally pinned to specific seam
    headers via {"to": ..., "via": [...]} (the fpga->obs event-ring seam).
  * The analyzer parses every #include out of comment-stripped code (so a
    commented-out include can never create an edge), attributes files to
    subsystems by directory, and checks the REAL edge set against the
    declared one. Any undeclared edge, any include of a non-seam header
    over a via-restricted edge, any file-level include cycle, and any
    src/ subsystem absent from the manifest is a finding.
  * The declared graph itself must be acyclic — a manifest that declares
    a cycle is a configuration error (exit 2), not a tree finding.

With the declared graph a DAG and the observed edges a subset of it, the
subsystem graph is proven acyclic; the file-level DFS extends the proof
down to individual headers. Rules:

  undeclared-edge      include crosses subsystems without a manifest edge
  restricted-header    via-restricted edge used outside its seam headers
  include-cycle        file-level include cycle (reported at the back edge)
  undeclared-subsystem src/<dir> exists but is not in the manifest

Escape hatch: `// rjf-analyze: allow(layering.<rule>)` on the offending
line (line 1 for undeclared-subsystem) — for grandfathering an edge while
a refactor is in flight; the manifest is the durable fix.
"""

from __future__ import annotations

import json
import pathlib
import re
import tempfile

from base import Pass, PassResult
from lexer import SourceFile

# The code view blanks string-literal contents, so the include *path* must
# come from the raw line; the code view still gates the match so an include
# inside a comment can never create an edge.
INCLUDE_GATE_RE = re.compile(r'^\s*#\s*include\s*"')
INCLUDE_RE = re.compile(r'^\s*#\s*include\s*"([^"]+)"')

RULE_TABLE = [
    ("undeclared-edge", "src",
     "include crosses subsystems without a declared manifest edge"),
    ("restricted-header", "src",
     "via-restricted edge used outside its declared seam headers"),
    ("include-cycle", "src",
     "file-level include cycle"),
    ("undeclared-subsystem", "src",
     "src/ subsystem missing from tools/layering.json"),
]


class Manifest:
    def __init__(self, data: dict):
        self.subsystems: dict[str, dict] = {}
        self.free: list[str] = list(data.get("free", []))
        for name, spec in data.get("subsystems", {}).items():
            edges = {}
            for edge in spec.get("may_include", []):
                if isinstance(edge, str):
                    edges[edge] = None  # unrestricted
                else:
                    edges[edge["to"]] = list(edge.get("via", [])) or None
            self.subsystems[name] = edges

    def validate(self) -> list[str]:
        """Config errors: unknown edge targets, declared cycles."""
        errors = []
        for name, edges in self.subsystems.items():
            for target in edges:
                if target not in self.subsystems:
                    errors.append(
                        f"manifest: {name} may_include unknown subsystem"
                        f" '{target}'")
        # Declared-graph cycle check (three-colour DFS).
        state = {}
        order = []

        def visit(node, stack):
            state[node] = 1
            for nxt in sorted(self.subsystems.get(node, {})):
                if nxt == node:
                    continue
                if state.get(nxt) == 1:
                    errors.append(
                        "manifest: declared layering graph has a cycle: "
                        + " -> ".join(stack + [nxt]))
                elif state.get(nxt, 0) == 0:
                    visit(nxt, stack + [nxt])
            state[node] = 2
            order.append(node)

        for name in sorted(self.subsystems):
            if state.get(name, 0) == 0:
                visit(name, [name])
        return errors


def load_manifest(root: pathlib.Path):
    path = root / "tools" / "layering.json"
    if not path.is_file():
        return None, f"missing layering manifest {path}"
    try:
        return Manifest(json.loads(path.read_text(encoding="utf-8"))), None
    except (json.JSONDecodeError, KeyError, TypeError) as exc:
        return None, f"unparseable layering manifest {path}: {exc}"


class LayeringPass(Pass):
    pass_id = "layering"
    title = "subsystem layering DAG vs. tools/layering.json"

    def rules(self):
        return {rid: desc for rid, _scope, desc in RULE_TABLE}

    # -- helpers ------------------------------------------------------------

    @staticmethod
    def _subsystem_of(path: pathlib.Path, src_root: pathlib.Path):
        try:
            rel = path.relative_to(src_root)
        except ValueError:
            return None
        return rel.parts[0] if len(rel.parts) > 1 else None

    @staticmethod
    def _resolve_include(inc: str, including: pathlib.Path,
                         include_dirs) -> pathlib.Path | None:
        for base in [including.parent, *include_dirs]:
            cand = (base / inc)
            if cand.is_file():
                return cand.resolve()
        return None

    def _analyze(self, root: pathlib.Path, manifest: Manifest,
                 files, file_cache, result: PassResult, include_dirs):
        src_root = (root / "src").resolve()

        # Subsystem attribution + undeclared-subsystem findings.
        subsys_of: dict[pathlib.Path, str] = {}
        flagged_dirs = set()
        for path in files:
            sub = self._subsystem_of(path, src_root)
            if sub is None:
                continue
            subsys_of[path] = sub
            if sub not in manifest.subsystems and sub not in flagged_dirs:
                sf = file_cache(path)
                if not sf.allowed(1, self.pass_id, "undeclared-subsystem"):
                    result.add(sf.rel, 1, "undeclared-subsystem",
                               f"subsystem 'src/{sub}' is not declared in"
                               " tools/layering.json (add it with its"
                               " may_include edges)")
                # One finding per directory keeps the signal readable.
                flagged_dirs.add(sub)

        # Include graph: file-level edges with line anchors.
        graph: dict[pathlib.Path, list] = {p: [] for p in files}
        observed_edges: dict[tuple, int] = {}
        for path in files:
            sf = file_cache(path)
            sub = subsys_of.get(path)
            for lineno, code, raw in sf.lines():
                if not INCLUDE_GATE_RE.match(code):
                    continue
                m = INCLUDE_RE.match(raw)
                if not m:
                    continue
                inc = m.group(1)
                target = self._resolve_include(inc, path, include_dirs)
                target_sub = None
                if target is not None:
                    target_sub = self._subsystem_of(target, src_root)
                if target_sub is None:
                    # Attribute by path prefix when the header itself is not
                    # on disk (the canonical "subsys/file.h" include shape).
                    head = inc.split("/", 1)[0]
                    if head in manifest.subsystems or \
                            (src_root / head).is_dir():
                        target_sub = head
                if target is not None and target in graph:
                    allowed_cycle = sf.allowed(lineno, self.pass_id,
                                               "include-cycle")
                    graph[path].append((target, lineno, allowed_cycle))
                if sub is None or target_sub is None or target_sub == sub:
                    continue
                observed_edges[(sub, target_sub)] = \
                    observed_edges.get((sub, target_sub), 0) + 1
                declared = manifest.subsystems.get(sub, {})
                if target_sub not in declared:
                    if not sf.allowed(lineno, self.pass_id, "undeclared-edge"):
                        result.add(sf.rel, lineno, "undeclared-edge",
                                   f"'{sub}' may not include '{target_sub}'"
                                   f" (#include \"{inc}\"); declare the edge"
                                   " in tools/layering.json or break the"
                                   " dependency")
                    continue
                via = declared[target_sub]
                if via is not None and inc not in via:
                    if not sf.allowed(lineno, self.pass_id,
                                      "restricted-header"):
                        result.add(sf.rel, lineno, "restricted-header",
                                   f"edge '{sub}' -> '{target_sub}' is"
                                   f" restricted to seam headers {via};"
                                   f" #include \"{inc}\" is outside the seam")

        # File-level cycle detection (iterative three-colour DFS). Allow-
        # tagged include lines drop their edge from the graph, which is the
        # per-line escape for a cycle under refactor.
        WHITE, GREY, BLACK = 0, 1, 2
        state = {p: WHITE for p in graph}
        cycle_count = 0
        for start in sorted(graph):
            if state[start] != WHITE:
                continue
            stack = [(start, iter(sorted(graph[start])))]
            state[start] = GREY
            while stack:
                node, it = stack[-1]
                advanced = False
                for target, lineno, allowed_cycle in it:
                    if allowed_cycle:
                        continue
                    if state.get(target, BLACK) == GREY:
                        sf = file_cache(node)
                        cycle_count += 1
                        chain = [file_cache(p).rel for p, _ in stack]
                        result.add(sf.rel, lineno, "include-cycle",
                                   "include cycle: "
                                   + " -> ".join(chain + [file_cache(target).rel]))
                        continue
                    if state.get(target, BLACK) == WHITE:
                        state[target] = GREY
                        stack.append((target, iter(sorted(graph[target]))))
                        advanced = True
                        break
                if not advanced:
                    state[node] = BLACK
                    stack.pop()

        result.stats = {
            "subsystems_declared": len(manifest.subsystems),
            "subsystems_observed": len({s for s in subsys_of.values()}),
            "files": len(files),
            "include_edges": sum(len(v) for v in graph.values()),
            "subsystem_edges_observed": sorted(
                f"{a}->{b}" for (a, b) in observed_edges),
            "acyclic": cycle_count == 0,
        }

    def run(self, ctx):
        result = PassResult(self.pass_id)
        manifest, err = load_manifest(ctx.root)
        if err:
            result.errors.append(err)
            return result
        result.errors.extend(manifest.validate())
        if result.errors:
            return result
        include_dirs = [ctx.root / "src"]
        if ctx.compdb is not None:
            include_dirs = [d for d in ctx.compdb.include_dirs()
                            if d.is_relative_to(ctx.root)] or include_dirs
        files = ctx.src_files()
        result.files_scanned = len(files)
        self._analyze(ctx.root, manifest, files, ctx.files.get, result,
                      include_dirs)
        return result

    # -- self-test ----------------------------------------------------------

    _SELFTEST_MANIFEST = {
        "subsystems": {
            "alpha": {"may_include": []},
            "beta": {"may_include": [
                {"to": "alpha", "via": ["alpha/pub.h"]}
            ]},
        },
        "free": ["tests"],
    }

    _SELFTEST_FILES = {
        # undeclared-edge: alpha may not include beta.
        "src/alpha/uses_beta.cpp": '#include "beta/impl.h"\n',
        # restricted-header: beta -> alpha only via alpha/pub.h.
        "src/beta/impl.h": '#include "alpha/priv.h"\n',
        "src/beta/impl.cpp": '#include "beta/impl.h"\n'
                             '#include "alpha/pub.h"\n',
        # include-cycle: ring1 -> ring2 -> ring1 (intra-subsystem).
        "src/alpha/pub.h": "int pub();\n",
        "src/alpha/priv.h": "int priv();\n",
        "src/alpha/ring1.h": '#include "alpha/ring2.h"\n',
        "src/alpha/ring2.h": '#include "alpha/ring1.h"\n',
        # undeclared-subsystem: gamma is absent from the manifest.
        "src/gamma/orphan.cpp": "int orphan();\n",
    }

    _SELFTEST_WANT = {
        ("src/alpha/uses_beta.cpp", "undeclared-edge"),
        ("src/beta/impl.h", "restricted-header"),
        ("src/alpha/ring2.h", "include-cycle"),
        ("src/gamma/orphan.cpp", "undeclared-subsystem"),
    }

    def _run_tree(self, root: pathlib.Path):
        result = PassResult(self.pass_id)
        manifest, err = load_manifest(root)
        assert err is None, err
        errors = manifest.validate()
        assert not errors, errors
        files = sorted(p.resolve() for p in (root / "src").glob("**/*")
                       if p.suffix in (".h", ".cpp"))
        cache = {}

        def file_cache(path):
            if path not in cache:
                cache[path] = SourceFile(path, root)
            return cache[path]

        self._analyze(root, manifest, files, file_cache, result,
                      [root / "src"])
        return result

    def self_test(self) -> int:
        with tempfile.TemporaryDirectory() as td:
            root = pathlib.Path(td).resolve()
            (root / "tools").mkdir(parents=True)
            (root / "tools" / "layering.json").write_text(
                json.dumps(self._SELFTEST_MANIFEST), encoding="utf-8")
            for rel, body in self._SELFTEST_FILES.items():
                p = root / rel
                p.parent.mkdir(parents=True, exist_ok=True)
                p.write_text(body, encoding="utf-8")

            result = self._run_tree(root)
            got = {(f.rel, f.rule) for f in result.findings}
            if got != self._SELFTEST_WANT:
                print("layering pass self-test FAILED")
                print("  expected:", sorted(self._SELFTEST_WANT))
                print("  got:     ", sorted(got))
                return 1
            if len(result.findings) != len(self._SELFTEST_WANT):
                print("layering pass self-test FAILED: expected exactly one"
                      " violation per rule, got",
                      [f.key() for f in result.findings])
                return 1
            if result.stats.get("acyclic"):
                print("layering pass self-test FAILED: seeded cycle not"
                      " reflected in stats")
                return 1

            # Tag each offending line and assert full suppression.
            for f in result.findings:
                p = root / f.rel
                lines = p.read_text(encoding="utf-8").splitlines()
                lines[f.line - 1] += \
                    f"  // rjf-analyze: allow(layering.{f.rule})"
                p.write_text("\n".join(lines) + "\n", encoding="utf-8")
            residue = self._run_tree(root)
            if residue.findings:
                print("layering pass self-test FAILED: allow-tags did not"
                      " suppress:")
                for f in residue.findings:
                    print(f"  {f!r}")
                return 1
            if not residue.stats.get("acyclic"):
                print("layering pass self-test FAILED: allow-tagged cycle"
                      " edge still counted")
                return 1

            # Manifest-cycle configuration error (exit-2 class, not a
            # finding): alpha <-> beta declared both ways must be rejected.
            bad = {"subsystems": {"alpha": {"may_include": ["beta"]},
                                  "beta": {"may_include": ["alpha"]}}}
            errors = Manifest(bad).validate()
            if not any("cycle" in e for e in errors):
                print("layering pass self-test FAILED: declared manifest"
                      " cycle not rejected")
                return 1

        print("layering pass self-test OK: 4 rules seeded, caught, and"
              " suppressed via allow-tags; declared-cycle manifest rejected")
        return 0
