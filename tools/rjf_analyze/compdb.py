"""CMake compile_commands.json loader.

The analyzer is driven by the same compile database clang-tidy uses
(CMAKE_EXPORT_COMPILE_COMMANDS ON at the top level), so "what the build
compiles" and "what the analyzer sees" cannot drift: translation units
are enumerated from the database, and include resolution uses the -I
paths the compiler was actually given. When no database exists (fresh
checkout, no configure yet) the passes fall back to globbing src/ and
resolving includes against the conventional -I src root, and the report
records that the run was glob-driven.
"""

from __future__ import annotations

import json
import pathlib
import shlex


class CompileDb:
    def __init__(self, path: pathlib.Path, root: pathlib.Path):
        self.path = path
        self.root = root
        self._tus: list[pathlib.Path] = []
        self._include_dirs: list[pathlib.Path] = []
        entries = json.loads(path.read_text(encoding="utf-8"))
        inc_seen = set()
        for entry in entries:
            directory = pathlib.Path(entry.get("directory", "."))
            file_path = (directory / entry["file"]).resolve() \
                if not pathlib.Path(entry["file"]).is_absolute() \
                else pathlib.Path(entry["file"]).resolve()
            self._tus.append(file_path)
            args = entry.get("arguments")
            if args is None:
                args = shlex.split(entry.get("command", ""))
            it = iter(range(len(args)))
            for i in it:
                arg = args[i]
                inc = None
                if arg == "-I" and i + 1 < len(args):
                    inc = args[i + 1]
                elif arg.startswith("-I") and len(arg) > 2:
                    inc = arg[2:]
                elif arg.startswith("-isystem"):
                    continue  # system dirs are outside the layering model
                if inc:
                    p = (directory / inc).resolve() \
                        if not pathlib.Path(inc).is_absolute() \
                        else pathlib.Path(inc).resolve()
                    if p not in inc_seen:
                        inc_seen.add(p)
                        self._include_dirs.append(p)
        self._tus = sorted(set(self._tus))

    def translation_units(self):
        return list(self._tus)

    def include_dirs(self):
        """Project include dirs from the build, repo-internal ones first."""
        internal = [p for p in self._include_dirs
                    if p.is_relative_to(self.root)]
        external = [p for p in self._include_dirs
                    if not p.is_relative_to(self.root)]
        return internal + external


def load(root: pathlib.Path, explicit: str | None = None):
    """Load the compile database. `explicit` wins; otherwise probe the
    conventional build directories. Returns None when absent."""
    root = pathlib.Path(root).resolve()
    candidates = []
    if explicit:
        candidates.append(pathlib.Path(explicit))
    else:
        for build in ("build", "build-scalar", "build-debug"):
            candidates.append(root / build / "compile_commands.json")
    for cand in candidates:
        if cand.is_file():
            try:
                return CompileDb(cand.resolve(), root)
            except (json.JSONDecodeError, KeyError, OSError):
                if explicit:
                    raise
    if explicit:
        raise FileNotFoundError(explicit)
    return None
