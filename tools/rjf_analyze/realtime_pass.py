"""Realtime-safety call-graph pass.

Functions annotated ``// rjf: realtime`` are the wait-free roots of the
DSP fabric (the EventRing producer emit path, ``CrossCorrelator::step``,
``DspCore::run_block``/``tick``). This pass computes the transitive call
closure of those roots across every scanned translation unit and flags,
anywhere in the closure:

  rt-allocation    heap allocation (new, malloc family, make_unique/shared,
                   growing containers: push_back/emplace/resize/reserve/...,
                   construction of allocating std:: containers)
  rt-mutex         mutex/lock use or explicit lock()/unlock()
  rt-io            stdio/iostream/filesystem I/O, and sleeps
  rt-throw         throw expressions
  rt-virtual-call  a call through a name declared `virtual` anywhere in
                   the scanned set — dynamic dispatch into unknown code

Escapes:

  // rjf-analyze: allow(realtime.call)      audited call edge — callees on
                                            this line are not traversed and
                                            virtual dispatch is accepted
  // rjf-analyze: allow(realtime.rt-<rule>) suppress a direct finding

Resolution is conservative (see cppmodel.py): a call the model cannot
attribute to a scanned definition is not traversed. Virtual-name matches
are the exception — dispatch into unknown code is exactly the hazard, so
they are flagged even when unresolvable.
"""

from __future__ import annotations

import pathlib
import re
import tempfile

from base import Pass, PassResult
import cppmodel

RULES = {
    "rt-allocation": "heap allocation reachable from a realtime root",
    "rt-mutex": "mutex or blocking lock reachable from a realtime root",
    "rt-io": "I/O or sleep reachable from a realtime root",
    "rt-throw": "throw expression reachable from a realtime root",
    "rt-virtual-call": "virtual dispatch reachable from a realtime root",
}

ALLOC_RE = re.compile(
    r"\bnew\b"
    r"|\b(?:malloc|calloc|realloc|aligned_alloc|strdup)\s*\("
    r"|\bmake_(?:unique|shared)\b"
    r"|\.(?:push_back|emplace_back|emplace|resize|reserve|insert|append)\s*\("
    r"|\bstd::(?:vector|string|deque|map|unordered_map|set|unordered_set"
    r"|list|function)\s*[<({]")
MUTEX_RE = re.compile(
    r"\bstd::(?:mutex|recursive_mutex|shared_mutex|timed_mutex)\b"
    r"|\b(?:lock_guard|unique_lock|scoped_lock|shared_lock)\b"
    r"|\.(?:lock|unlock|try_lock)\s*\("
    r"|\bstd::lock\s*\(")
IO_RE = re.compile(
    r"\b(?:printf|fprintf|snprintf|puts|putchar|fwrite|fread|fopen|fclose"
    r"|fflush|fputs|fgets|getline)\s*\("
    r"|\bstd::c(?:out|err|log)\b"
    r"|\b[oi]?fstream\b"
    r"|\bsleep_(?:for|until)\b")
THROW_RE = re.compile(r"\bthrow\b")

TOKEN_RULES = (
    ("rt-allocation", ALLOC_RE),
    ("rt-mutex", MUTEX_RE),
    ("rt-io", IO_RE),
    ("rt-throw", THROW_RE),
)


class _Universe:
    """Merged FileModels plus the name indices used for call resolution."""

    def __init__(self, models):
        self.models = models
        self.by_name: dict[str, list] = {}        # name -> [Function]
        self.by_qualified: dict[str, object] = {}  # Cls::name -> Function
        self.by_file: dict[str, dict] = {}         # rel -> {name: Function}
        self.members: dict[str, dict] = {}         # class -> {member: type}
        self.methods: dict[str, set] = {}          # class -> method names
        self.virtuals: set = set()
        for model in models:
            self.virtuals |= model.virtuals
            for cls, mem in model.members.items():
                self.members.setdefault(cls, {}).update(mem)
            for cls, names in model.methods.items():
                self.methods.setdefault(cls, set()).update(names)
            for func in model.functions:
                self.by_name.setdefault(func.name, []).append(func)
                # first definition wins; redefinitions of the same
                # qualified name (e.g. overloads) collapse.
                self.by_qualified.setdefault(func.qualified, func)
                self.by_file.setdefault(func.sf.rel, {}) \
                    .setdefault(func.name, func)

    def roots(self):
        return [f for m in self.models for f in m.functions if f.realtime]

    def resolve(self, func, recv, qual, name):
        """Map one call site to a scanned Function, or None."""
        if recv is not None:
            rtype = None
            if recv == "this":
                rtype = func.cls
            elif func.cls and recv in self.members.get(func.cls, {}):
                rtype = self.members[func.cls][recv]
            elif recv in func.params:
                rtype = func.params[recv]
            if rtype:
                hit = self.by_qualified.get(f"{rtype}::{name}")
                if hit is not None:
                    return hit
            return None
        if qual:
            cls = qual.rsplit("::", 1)[-1]
            hit = self.by_qualified.get(f"{cls}::{name}")
            if hit is not None:
                return hit
            # namespace qualifier, not a class: fall through to name lookup
        if func.cls:
            hit = self.by_qualified.get(f"{func.cls}::{name}")
            if hit is not None:
                return hit
        hit = self.by_file.get(func.sf.rel, {}).get(name)
        if hit is not None:
            return hit
        cands = self.by_name.get(name, [])
        if len(cands) == 1:
            return cands[0]
        return None


class RealtimePass(Pass):
    pass_id = "realtime"
    title = "realtime-safety call-graph check"

    def rules(self):
        return dict(RULES)

    # -- analysis -----------------------------------------------------------

    def _scan_universe(self, ctx, files):
        models = []
        for path in files:
            models.append(cppmodel.scan_file(ctx.files.get(path)))
        return _Universe(models)

    def _check(self, ctx, result, universe):
        roots = universe.roots()
        result.stats["roots"] = sorted(f.qualified for f in roots)
        seen = set()
        edges = 0
        virtual_hits = 0
        queue = [(f, [f.qualified]) for f in roots]
        reported = set()

        def report(func, lineno, rule, message, chain):
            key = (func.sf.rel, lineno, rule)
            if key in reported:
                return
            if func.sf.allowed(lineno, self.pass_id, rule):
                return
            reported.add(key)
            via = " -> ".join(chain)
            result.add(func.sf.rel, lineno, rule,
                       f"{message} in {func.qualified}() "
                       f"[realtime path: {via}]")

        while queue:
            func, chain = queue.pop(0)
            if id(func) in seen:
                continue
            seen.add(id(func))
            for lineno, code in func.body:
                for rule, regex in TOKEN_RULES:
                    if regex.search(code):
                        report(func, lineno, rule, RULES[rule], chain)
                edge_allowed = func.sf.allowed(lineno, self.pass_id, "call")
                for recv, _op, qual, name in cppmodel.extract_calls(code):
                    if edge_allowed:
                        continue
                    if name in universe.virtuals:
                        virtual_hits += 1
                        report(func, lineno, "rt-virtual-call",
                               f"virtual dispatch via {name}()", chain)
                        continue
                    callee = universe.resolve(func, recv, qual, name)
                    if callee is None or id(callee) in seen:
                        continue
                    edges += 1
                    queue.append((callee, chain + [callee.qualified]))
        result.stats["closure_functions"] = len(seen)
        result.stats["call_edges_traversed"] = edges

    def run(self, ctx):
        result = PassResult(self.pass_id)
        files = ctx.src_files()
        if not files:
            result.errors.append("no sources under src/ — wrong --root?")
            return result
        universe = self._scan_universe(ctx, files)
        result.files_scanned = len(files)
        if not universe.roots():
            result.errors.append(
                "no `// rjf: realtime` annotations found — the realtime "
                "pass has nothing to protect (annotations removed?)")
            return result
        self._check(ctx, result, universe)
        return result

    # -- self-test ----------------------------------------------------------

    SEEDS = {
        "rt-allocation": ("src/rt/alloc.cpp", """\
// rjf: realtime
void hot_alloc() {
  int* p = new int(3);
  (void)p;
}
"""),
        "rt-io": ("src/rt/io.cpp", """\
#include <cstdio>
// rjf: realtime
void hot_io() {
  printf("tick");
}
"""),
        "rt-throw": ("src/rt/throwy.cpp", """\
// rjf: realtime
void hot_throw(int v) {
  if (v < 0) throw v;
  (void)v;
}
"""),
    }

    MUTEX_HELPER = ("src/rt/helper.h", """\
#pragma once
#include <mutex>
namespace rt {
inline std::mutex& mu();
inline void helper_lock() {
  std::lock_guard<std::mutex> g(mu());
}
inline void helper_clean(int& v) { v += 1; }
}  // namespace rt
""")
    MUTEX_CALLER = ("src/rt/mutexy.cpp", """\
#include "rt/helper.h"
namespace rt {
// rjf: realtime
void hot_path(int& v) {
  helper_clean(v);
  helper_lock();
}
}  // namespace rt
""")
    VIRT_HEADER = ("src/rt/virt.h", """\
#pragma once
struct Sink {
  virtual ~Sink() = default;
  virtual void on_thing(int v) = 0;
};
""")
    VIRT_CALLER = ("src/rt/virt.cpp", """\
#include "rt/virt.h"
// rjf: realtime
void hot_virtual(Sink* sink) {
  sink->on_thing(1);
}
""")

    def self_test(self):
        from base import Context

        def write_tree(tmp, edits=None):
            files = dict(self.SEEDS)
            files["mutex-helper"] = self.MUTEX_HELPER
            files["mutex-caller"] = self.MUTEX_CALLER
            files["virt-header"] = self.VIRT_HEADER
            files["virt-caller"] = self.VIRT_CALLER
            for rel, text in files.values():
                path = tmp / rel
                path.parent.mkdir(parents=True, exist_ok=True)
                if edits and rel in edits:
                    text = edits[rel](text)
                path.write_text(text, encoding="utf-8")

        failures = 0
        with tempfile.TemporaryDirectory() as td:
            tmp = pathlib.Path(td).resolve()
            write_tree(tmp)
            res = self.run(Context(tmp))
            got = {(f.rel, f.rule) for f in res.findings}
            want = {
                ("src/rt/alloc.cpp", "rt-allocation"),
                ("src/rt/io.cpp", "rt-io"),
                ("src/rt/throwy.cpp", "rt-throw"),
                ("src/rt/helper.h", "rt-mutex"),        # transitive!
                ("src/rt/virt.cpp", "rt-virtual-call"),
            }
            if got != want:
                print(f"  FAIL realtime: expected {sorted(want)}, "
                      f"got {sorted(got)}")
                failures += 1
            else:
                print(f"  ok realtime: all {len(want)} seeded violations "
                      "detected (mutex via transitive helper call)")
            if len(res.findings) != len(want):
                print(f"  FAIL realtime: duplicate findings: {res.findings}")
                failures += 1

        # Round 2: per-rule allow tags suppress every direct finding.
        def tag(rule):
            def edit(text):
                lines = text.splitlines()
                pat = {
                    "rt-allocation": "new int",
                    "rt-io": "printf",
                    "rt-throw": "throw v",
                    "rt-mutex": "lock_guard",
                }[rule]
                for i, line in enumerate(lines):
                    if pat in line:
                        lines[i] = line + \
                            f"  // rjf-analyze: allow(realtime.{rule})"
                return "\n".join(lines) + "\n"
            return edit

        with tempfile.TemporaryDirectory() as td:
            tmp = pathlib.Path(td).resolve()
            write_tree(tmp, edits={
                "src/rt/alloc.cpp": tag("rt-allocation"),
                "src/rt/io.cpp": tag("rt-io"),
                "src/rt/throwy.cpp": tag("rt-throw"),
                "src/rt/helper.h": tag("rt-mutex"),
            })
            # virt.cpp: tag the dispatch line itself
            virt = tmp / "src/rt/virt.cpp"
            text = virt.read_text(encoding="utf-8").replace(
                "sink->on_thing(1);",
                "sink->on_thing(1);  "
                "// rjf-analyze: allow(realtime.rt-virtual-call)")
            virt.write_text(text, encoding="utf-8")
            res = self.run(Context(tmp))
            if res.findings:
                print("  FAIL realtime: allow tags did not suppress: "
                      f"{res.findings}")
                failures += 1
            else:
                print("  ok realtime: per-rule allow tags suppress all five")

        # Round 3: an audited call edge (allow(realtime.call)) stops
        # traversal — the transitive mutex finding disappears without
        # touching the helper.
        with tempfile.TemporaryDirectory() as td:
            tmp = pathlib.Path(td).resolve()
            write_tree(tmp, edits={
                "src/rt/mutexy.cpp": lambda t: t.replace(
                    "  helper_lock();",
                    "  helper_lock();  // rjf-analyze: allow(realtime.call)"),
            })
            res = self.run(Context(tmp))
            got = {(f.rel, f.rule) for f in res.findings}
            if ("src/rt/helper.h", "rt-mutex") in got:
                print("  FAIL realtime: audited edge still traversed")
                failures += 1
            elif len(got) != 4:
                print(f"  FAIL realtime: unexpected residue {sorted(got)}")
                failures += 1
            else:
                print("  ok realtime: allow(realtime.call) prunes the "
                      "audited edge (helper mutex no longer reported)")
        return failures


PASS = RealtimePass()
