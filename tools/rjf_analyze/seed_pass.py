"""Seed-discipline pass: every RNG engine must be seeded on purpose.

The determinism guarantees (bit-identical sweeps at any thread count,
byte-identical campaign resume) rest on one convention: all randomness
flows from an explicit base seed through dsp::derive_seed / splitmix
substreams down to dsp::Xoshiro256 engines. An engine constructed with a
literal, or default-constructed and never seeded, silently satisfies the
type system while producing streams that are either shared between
components that must be independent or disconnected from the campaign
seed entirely — the exact bug class behind PR 3's thread-local cache fix.

Scope: all of src/ (every subsystem feeds deterministic sweeps; a
literal-seeded engine in a PHY or channel model corrupts trial
independence just as surely as one in the sweep core).

Rules:

  engine-literal-seed      an engine constructed from a bare integer
                           literal (Xoshiro256 rng(12345)). Seeds must be
                           derive_seed(...) expressions, function
                           parameters, or substream draws. A literal mixed
                           into an expression with a parameter
                           (config.seed ^ 0xC0FFEE) is fine — that is a
                           substream tag, not a seed.
  engine-default-construct an engine with no seed at all: a local
                           `Xoshiro256 rng;`, a `Xoshiro256()` temporary,
                           or a member (name ending in '_') that no
                           constructor initializer in the scanned set ever
                           seeds.
  foreign-engine           a <random> engine (std::mt19937 & friends).
                           Their streams are not reachable from
                           derive_seed's splitmix partitioning; use
                           dsp::Xoshiro256.

Heuristics, stated honestly: members are recognised by the repo's `name_`
convention and matched to constructor-initializer entries `name_(expr)` /
`name_{expr}` anywhere in the scanned set (same-name members of two
classes alias — acceptable for a lint whose findings are all reviewed).
The defining module src/dsp/rng.{h,cpp} is exempt: the default-seed
constant lives there by design.

Escape hatch: `// rjf-analyze: allow(seeds.<rule>)` on the offending line.
"""

from __future__ import annotations

import pathlib
import re
import tempfile

from base import Pass, PassResult
from lexer import SourceFile

ENGINE = r"(?:dsp::)?Xoshiro256"
FOREIGN_RE = re.compile(
    r"\bstd::(mt19937(_64)?|minstd_rand0?|default_random_engine"
    r"|ranlux(24|48)(_base)?|knuth_b|subtract_with_carry_engine"
    r"|linear_congruential_engine|mersenne_twister_engine)\b")

# `Xoshiro256 name(args)` / `Xoshiro256 name{args}` declarations.
DECL_INIT_RE = re.compile(
    ENGINE + r"\s+(?P<name>\w+)\s*(?P<open>[({])(?P<args>[^)}]*)[)}]")
# `Xoshiro256 name;` declarations (no initializer).
DECL_BARE_RE = re.compile(ENGINE + r"\s+(?P<name>\w+)\s*;")
# `Xoshiro256(args)` temporaries / most-vexing constructions.
TEMP_RE = re.compile(ENGINE + r"\s*[({](?P<args>[^)}]*)[)}]")
# Constructor-initializer entries: `: name_(expr)` / `, name_{expr}`.
MEMINIT_RE = re.compile(r"[:,]\s*(?P<name>\w+_)\s*[({](?P<args>[^)}]*)[)}]")

INT_LITERAL_RE = re.compile(
    r"^(0[xX][0-9a-fA-F']+|0[bB][01']+|[0-9][0-9']*)"
    r"(u|U|l|L|ul|UL|uL|Ul|ll|LL|ull|ULL)?$")

# The engine's own module defines the default-seed constant.
EXEMPT = {"src/dsp/rng.h", "src/dsp/rng.cpp"}

RULE_TABLE = [
    ("engine-literal-seed", "src",
     "RNG engine seeded from a bare integer literal (derive the seed from"
     " the campaign/sweep seed or take it as a parameter)"),
    ("engine-default-construct", "src",
     "RNG engine never explicitly seeded (default-constructed local,"
     " temporary, or member with no seeding constructor initializer)"),
    ("foreign-engine", "src",
     "std::<random> engine outside the derive_seed/splitmix seed fabric"
     " (use dsp::Xoshiro256)"),
]


def _is_literal_seed(args: str) -> bool:
    return INT_LITERAL_RE.match(args.strip()) is not None


class SeedPass(Pass):
    pass_id = "seeds"
    title = "RNG seed discipline (derive_seed / explicit parameters only)"

    def rules(self):
        return {rid: desc for rid, _scope, desc in RULE_TABLE}

    def _scan(self, sources: list[SourceFile], result: PassResult):
        # First sweep: collect every constructor-initializer that passes a
        # nonempty argument to a `name_` member, across the whole set.
        seeded_members: set[str] = set()
        for sf in sources:
            for _lineno, code, _raw in sf.lines():
                for m in MEMINIT_RE.finditer(code):
                    if m.group("args").strip():
                        seeded_members.add(m.group("name"))

        for sf in sources:
            if sf.rel in EXEMPT:
                continue
            for lineno, code, _raw in sf.lines():
                if FOREIGN_RE.search(code):
                    if not sf.allowed(lineno, self.pass_id, "foreign-engine"):
                        result.add(sf.rel, lineno, "foreign-engine",
                                   RULE_TABLE[2][2])
                spans = []  # regions already claimed by a decl match

                def claimed(start, end):
                    return any(s < end and start < e for s, e in spans)

                for m in DECL_INIT_RE.finditer(code):
                    spans.append(m.span())
                    args = m.group("args").strip()
                    if not args:
                        if not sf.allowed(lineno, self.pass_id,
                                          "engine-default-construct"):
                            result.add(sf.rel, lineno,
                                       "engine-default-construct",
                                       f"engine '{m.group('name')}' value-"
                                       "initialized with no seed")
                    elif _is_literal_seed(args):
                        if not sf.allowed(lineno, self.pass_id,
                                          "engine-literal-seed"):
                            result.add(sf.rel, lineno, "engine-literal-seed",
                                       f"engine '{m.group('name')}' seeded"
                                       f" from literal {args}")
                for m in DECL_BARE_RE.finditer(code):
                    spans.append(m.span())
                    name = m.group("name")
                    if name.endswith("_") and name in seeded_members:
                        continue  # member seeded in some ctor init list
                    if not sf.allowed(lineno, self.pass_id,
                                      "engine-default-construct"):
                        what = ("member" if name.endswith("_") else "local")
                        result.add(sf.rel, lineno, "engine-default-construct",
                                   f"engine {what} '{name}' is never"
                                   " explicitly seeded")
                for m in TEMP_RE.finditer(code):
                    if claimed(*m.span()):
                        continue
                    args = m.group("args").strip()
                    if not args:
                        if not sf.allowed(lineno, self.pass_id,
                                          "engine-default-construct"):
                            result.add(sf.rel, lineno,
                                       "engine-default-construct",
                                       "temporary engine constructed with"
                                       " no seed")
                    elif _is_literal_seed(args):
                        if not sf.allowed(lineno, self.pass_id,
                                          "engine-literal-seed"):
                            result.add(sf.rel, lineno, "engine-literal-seed",
                                       f"engine seeded from literal {args}")

        # Constructor-initializer seeds themselves may not be literals.
        for sf in sources:
            if sf.rel in EXEMPT:
                continue
            engine_members = set()
            for _lineno, code, _raw in sf.lines():
                for m in DECL_BARE_RE.finditer(code):
                    if m.group("name").endswith("_"):
                        engine_members.add(m.group("name"))
            if not engine_members:
                continue
            for other in sources:
                for lineno, code, _raw in other.lines():
                    for m in MEMINIT_RE.finditer(code):
                        if m.group("name") not in engine_members:
                            continue
                        args = m.group("args").strip()
                        if args and _is_literal_seed(args):
                            if not other.allowed(lineno, self.pass_id,
                                                 "engine-literal-seed"):
                                result.add(other.rel, lineno,
                                           "engine-literal-seed",
                                           f"engine member"
                                           f" '{m.group('name')}' seeded"
                                           f" from literal {args}")

    def run(self, ctx):
        result = PassResult(self.pass_id)
        files = ctx.src_files()
        sources = [ctx.files.get(p) for p in files]
        result.files_scanned = len(sources)
        self._scan(sources, result)
        # Duplicate literal-member findings can arise once per declaring
        # file; dedupe on (file, line, rule).
        seen = set()
        unique = []
        for f in result.findings:
            if f.key() not in seen:
                seen.add(f.key())
                unique.append(f)
        result.findings = unique
        result.stats = {"seeded_ctor_members_matched": True}
        return result

    # -- self-test ----------------------------------------------------------

    _SELFTEST_FILES = {
        # engine-literal-seed: a bare literal seed.
        "src/alpha/literal.cpp":
            "void f() { dsp::Xoshiro256 rng(12345); (void)rng; }\n",
        # engine-default-construct: a local with no seed at all.
        "src/alpha/unseeded.cpp":
            "void g() { dsp::Xoshiro256 rng; (void)rng; }\n",
        # foreign-engine: a <random> engine bypassing the seed fabric.
        "src/alpha/foreign.cpp":
            "void h() { std::mt19937 gen(7); (void)gen; }\n",
        # Clean shapes that must NOT fire: parameter seed, derive_seed,
        # literal-as-substream-tag, member seeded via ctor initializer.
        "src/alpha/clean.cpp":
            "void ok(std::uint64_t seed) {\n"
            "  dsp::Xoshiro256 a(seed);\n"
            "  dsp::Xoshiro256 b(dsp::derive_seed(seed, 3));\n"
            "  dsp::Xoshiro256 c(seed ^ 0xC0FFEEULL);\n"
            "}\n",
        "src/alpha/member.h":
            "class Thing {\n"
            " public:\n"
            "  explicit Thing(std::uint64_t seed);\n"
            " private:\n"
            "  dsp::Xoshiro256 rng_;\n"
            "};\n",
        "src/alpha/member.cpp":
            '#include "alpha/member.h"\n'
            "Thing::Thing(std::uint64_t seed) : rng_(seed) {}\n",
    }

    _SELFTEST_WANT = {
        ("src/alpha/literal.cpp", "engine-literal-seed"),
        ("src/alpha/unseeded.cpp", "engine-default-construct"),
        ("src/alpha/foreign.cpp", "foreign-engine"),
    }

    def _run_tree(self, root: pathlib.Path):
        result = PassResult(self.pass_id)
        sources = [SourceFile(p, root)
                   for p in sorted((root / "src").glob("**/*"))
                   if p.suffix in (".h", ".cpp")]
        self._scan(sources, result)
        return result

    def self_test(self) -> int:
        with tempfile.TemporaryDirectory() as td:
            root = pathlib.Path(td).resolve()
            for rel, body in self._SELFTEST_FILES.items():
                p = root / rel
                p.parent.mkdir(parents=True, exist_ok=True)
                p.write_text(body, encoding="utf-8")
            result = self._run_tree(root)
            got = {(f.rel, f.rule) for f in result.findings}
            if got != self._SELFTEST_WANT:
                print("seeds pass self-test FAILED")
                print("  expected:", sorted(self._SELFTEST_WANT))
                print("  got:     ", sorted(got))
                return 1
            if len(result.findings) != len(self._SELFTEST_WANT):
                print("seeds pass self-test FAILED: expected exactly one"
                      " violation per rule, got",
                      [f.key() for f in result.findings])
                return 1

            # Tag each offending line and assert full suppression.
            for f in result.findings:
                p = root / f.rel
                lines = p.read_text(encoding="utf-8").splitlines()
                lines[f.line - 1] += \
                    f"  // rjf-analyze: allow(seeds.{f.rule})"
                p.write_text("\n".join(lines) + "\n", encoding="utf-8")
            residue = self._run_tree(root)
            if residue.findings:
                print("seeds pass self-test FAILED: allow-tags did not"
                      " suppress:")
                for f in residue.findings:
                    print(f"  {f!r}")
                return 1

            # An unseeded member (no ctor initializer anywhere) must fire.
            orphan = root / "src" / "alpha" / "orphan_member.h"
            orphan.write_text(
                "class Orphan {\n  dsp::Xoshiro256 rng2_;\n};\n",
                encoding="utf-8")
            residue = self._run_tree(root)
            keys = {(f.rel, f.rule) for f in residue.findings}
            if keys != {("src/alpha/orphan_member.h",
                         "engine-default-construct")}:
                print("seeds pass self-test FAILED: unseeded member not"
                      " flagged, got", sorted(keys))
                return 1

        print("seeds pass self-test OK: 3 rules seeded, caught, and"
              " suppressed via allow-tags; ctor-initializer members and"
              " substream expressions pass clean")
        return 0
