"""Machine-readable report for CI artifact upload."""

from __future__ import annotations

import json

TOOL = "rjf_analyze"
VERSION = "1.0"


def build_report(root, compdb_path, results):
    passes = {}
    total = 0
    for pass_obj, result in results:
        findings = sorted(result.findings, key=lambda f: f.key())
        total += len(findings)
        passes[pass_obj.pass_id] = {
            "title": pass_obj.title,
            "files_scanned": result.files_scanned,
            "rules": pass_obj.rules(),
            "stats": result.stats,
            "errors": result.errors,
            "findings": [f.as_dict() for f in findings],
        }
    return {
        "tool": TOOL,
        "version": VERSION,
        "root": str(root),
        "compile_commands": str(compdb_path) if compdb_path else None,
        "total_findings": total,
        "passes": passes,
    }


def write_report(path, report):
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2, sort_keys=False)
        fh.write("\n")
