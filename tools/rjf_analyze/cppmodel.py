"""Lightweight structural model of C++ sources for the realtime pass.

This is not a compiler front end — it is a brace-and-statement scanner on
the shared lexer's comment/string-stripped view, built to answer exactly
the questions the realtime-safety call-graph pass asks:

  * which functions are DEFINED in the scanned set, with their bodies as
    (line, code) pairs — including methods defined inline at class scope
    and out-of-class `Cls::name(...)` definitions;
  * which functions carry the `// rjf: realtime` annotation (comment
    lines immediately above the definition, or trailing on its header);
  * what the declared type of each class data member and each function
    parameter is (so `ring_->push_event(...)` resolves to
    `EventRing::push_event`);
  * which method names are declared `virtual` anywhere in the set.

Known, accepted approximations (documented in DESIGN.md section 15):
overloads collapse per name, operators and lambdas are not modelled as
callees, and preprocessor conditionals are ignored (both arms scanned
when both are present textually). The pass is conservative about what it
cannot resolve: an unresolvable call is simply not traversed.
"""

from __future__ import annotations

import re

KEYWORDS = {
    "if", "for", "while", "switch", "catch", "return", "sizeof", "decltype",
    "alignas", "alignof", "noexcept", "static_assert", "new", "delete",
    "throw", "assert", "defined", "do", "else", "case", "goto", "co_await",
    "co_return", "co_yield", "requires", "typeid",
}

ATTR_RE = re.compile(r"\[\[[^\]]*\]\]|__attribute__\s*\(\(.*?\)\)")
NAMESPACE_RE = re.compile(
    r'^\s*(inline\s+)?namespace\b|^\s*extern\s*"')
CLASS_RE = re.compile(r"\b(class|struct|union)\s+([A-Za-z_]\w*)[^;=()]*$")
ENUM_RE = re.compile(r"\benum\b")
LAMBDA_TAIL_RE = re.compile(
    r"\[[^\[\]]*\]\s*(\([^()]*\))?\s*(mutable\b|noexcept\b|->[\w:<>&*\s]+)*\s*$")
FUNC_NAME_RE = re.compile(r"((?:[A-Za-z_]\w*::)*)(~?[A-Za-z_]\w*)\s*\(")
MEMBER_RE = re.compile(
    r"^(?P<type>[\w:<>,\s*&]+?)[\s*&]+(?P<name>[A-Za-z_]\w*)\s*"
    r"(=[^;]*|\{[^{}]*\})?$")
PARAM_RE = re.compile(
    r"^(?P<type>[\w:<>,\s*&\.]+?)[\s*&]+(?P<name>[A-Za-z_]\w*)\s*(=.*)?$")
ACCESS_RE = re.compile(r"\b(public|private|protected)\s*:")
REALTIME_RE = re.compile(r"//\s*rjf:\s*realtime\b")
TEMPLATE_CALL_RE = re.compile(r"(\w)\s*<[^<>()]*>\s*\(")
CALL_RE = re.compile(
    r"(?:(?P<recv>\b[A-Za-z_]\w*)\s*(?P<op>\.|->)\s*)?"
    r"(?P<qual>(?:[A-Za-z_]\w*::)*)(?P<name>~?[A-Za-z_]\w*)\s*\(")


def normalize_type(text: str) -> str:
    """'const obs::EventRing*' -> 'EventRing'; 'hw::UInt<2>' -> 'UInt'."""
    t = text.strip()
    t = re.sub(r"\b(const|volatile|mutable|static|constexpr|inline"
               r"|typename|struct|class)\b", " ", t)
    t = t.replace("*", " ").replace("&", " ").strip()
    t = t.split("<", 1)[0].strip()
    if not t:
        return ""
    last = t.split()[-1] if t.split() else t
    return last.rsplit("::", 1)[-1]


class Function:
    def __init__(self, sf, cls, name, header_line, header_text):
        self.sf = sf                  # SourceFile of the definition
        self.cls = cls                # enclosing/qualifying class or None
        self.name = name
        self.qualified = f"{cls}::{name}" if cls else name
        self.header_line = header_line
        self.header_text = header_text
        self.body = []                # list of (lineno, code_fragment)
        self.params = {}              # param name -> normalized type
        self.realtime = False

    def __repr__(self):
        return f"<fn {self.qualified} @{self.sf.rel}:{self.header_line}>"


class FileModel:
    def __init__(self, sf):
        self.sf = sf
        self.functions: list[Function] = []
        self.members: dict[str, dict[str, str]] = {}   # class -> name -> type
        self.methods: dict[str, set] = {}              # class -> method names
        self.virtuals: set = set()


class _Scope:
    __slots__ = ("kind", "name", "depth", "func")

    def __init__(self, kind, name=None, func=None):
        self.kind = kind      # namespace|class|function|data|enum|anon
        self.name = name
        self.depth = 1
        self.func = func


def _parse_params(func: Function):
    text = func.header_text
    m = None
    for cand in FUNC_NAME_RE.finditer(text):
        if cand.group(2) not in KEYWORDS:
            m = cand
            break
    if m is None:
        return
    start = m.end()  # just past '('
    depth = 1
    i = start
    while i < len(text) and depth:
        if text[i] == "(":
            depth += 1
        elif text[i] == ")":
            depth -= 1
        i += 1
    params = text[start:i - 1]
    # split top-level commas (ignore <> and () nesting)
    parts, buf, d = [], [], 0
    for c in params:
        if c in "<([":
            d += 1
        elif c in ">)]":
            d -= 1
        if c == "," and d == 0:
            parts.append("".join(buf))
            buf = []
        else:
            buf.append(c)
    if buf:
        parts.append("".join(buf))
    for part in parts:
        pm = PARAM_RE.match(part.strip())
        if pm:
            func.params[pm.group("name")] = normalize_type(pm.group("type"))


class _Scanner:
    def __init__(self, sf):
        self.sf = sf
        self.model = FileModel(sf)
        self.scopes: list[_Scope] = []
        self.stmt: list[str] = []
        self.stmt_line = None

    # -- statement handling at namespace/class scope ------------------------

    def _enclosing_class(self):
        for scope in reversed(self.scopes):
            if scope.kind == "class":
                return scope.name
        return None

    def _statement_text(self):
        text = "".join(self.stmt)
        text = ATTR_RE.sub(" ", text)
        text = ACCESS_RE.sub(" ", text)
        return text.strip()

    def _candidate_name(self, text):
        for cand in FUNC_NAME_RE.finditer(text):
            if cand.group(2) not in KEYWORDS:
                return cand
        return None

    def _finish_declaration(self, text):
        """A ';'-terminated statement at class scope: method declaration
        (virtual tracking) or data member (type tracking)."""
        cls = self._enclosing_class()
        if cls is None:
            return
        cand = self._candidate_name(text) if "(" in text else None
        if cand is not None:
            name = cand.group(2)
            self.model.methods.setdefault(cls, set()).add(name)
            if re.search(r"\bvirtual\b", text):
                self.model.virtuals.add(name)
            return
        mm = MEMBER_RE.match(text)
        if mm and "(" not in mm.group("type"):
            self.model.members.setdefault(cls, {})[mm.group("name")] = \
                normalize_type(mm.group("type"))

    def _annotated(self, header_line):
        raw = self.sf.raw_lines
        if header_line <= len(raw) and REALTIME_RE.search(raw[header_line - 1]):
            return True
        k = header_line - 1
        while k >= 1:
            line = raw[k - 1].strip()
            if not line:
                k -= 1
                continue
            if line.startswith("//"):
                if REALTIME_RE.search(line):
                    return True
                k -= 1
                continue
            break
        return False

    def _open_brace(self, lineno):
        text = self._statement_text()
        self.stmt = []
        stmt_line = self.stmt_line
        self.stmt_line = None
        if not text:
            self.scopes.append(_Scope("anon"))
            return
        if NAMESPACE_RE.search(text):
            self.scopes.append(_Scope("namespace", text))
            return
        if ENUM_RE.search(text):
            self.scopes.append(_Scope("enum"))
            return
        cm = CLASS_RE.search(text)
        if cm and "(" not in text.split(cm.group(1))[0]:
            name = cm.group(2)
            self.model.members.setdefault(name, {})
            self.model.methods.setdefault(name, set())
            self.scopes.append(_Scope("class", name))
            return
        # data definition: `Type name = {...}` or `Type name{...}`
        if re.search(r"=\s*$", text) or re.search(r"[\w>\]]\s*$", text) \
                and ")" not in text:
            self.scopes.append(_Scope("data"))
            return
        if LAMBDA_TAIL_RE.search(text):
            self.scopes.append(_Scope("anon"))
            return
        cand = self._candidate_name(text) if "(" in text else None
        if cand is not None:
            qual = cand.group(1).rstrip(":")
            cls = qual.rsplit("::", 1)[-1] if qual else self._enclosing_class()
            func = Function(self.sf, cls or None, cand.group(2),
                            stmt_line or lineno, text)
            func.realtime = self._annotated(stmt_line or lineno)
            _parse_params(func)
            self.model.functions.append(func)
            if cls:
                self.model.methods.setdefault(cls, set()).add(cand.group(2))
            self.scopes.append(_Scope("function", func=func))
            return
        self.scopes.append(_Scope("anon"))

    # -- main loop ----------------------------------------------------------

    def scan(self):
        body_buf = None   # (func, lineno, [chars]) for the current line
        for lineno, code in enumerate(self.sf.code_lines, start=1):
            if code.lstrip().startswith("#"):
                continue
            i = 0
            n = len(code)
            line_frag = []
            frag_func = None
            top = self.scopes[-1] if self.scopes else None
            if top is not None and top.kind == "function":
                frag_func = top.func
            while i < n:
                c = code[i]
                top = self.scopes[-1] if self.scopes else None
                if top is not None and top.kind in ("function", "data",
                                                    "enum", "anon"):
                    if c == "{":
                        top.depth += 1
                    elif c == "}":
                        top.depth -= 1
                        if top.depth == 0:
                            if top.kind == "function" and line_frag and \
                                    frag_func is top.func:
                                top.func.body.append(
                                    (lineno, "".join(line_frag)))
                                line_frag = []
                                frag_func = None
                            self.scopes.pop()
                            i += 1
                            continue
                    if top.kind == "function":
                        if frag_func is not top.func:
                            if line_frag and frag_func is not None:
                                frag_func.body.append(
                                    (lineno, "".join(line_frag)))
                            line_frag = []
                            frag_func = top.func
                        line_frag.append(c)
                    i += 1
                    continue
                # namespace / class / top level
                if c == "{":
                    self._open_brace(lineno)
                elif c == "}":
                    if self.scopes:
                        self.scopes.pop()
                    self.stmt = []
                    self.stmt_line = None
                elif c == ";":
                    text = self._statement_text()
                    if text:
                        self._finish_declaration(text)
                    self.stmt = []
                    self.stmt_line = None
                else:
                    if self.stmt_line is None and not c.isspace():
                        self.stmt_line = lineno
                    if self.stmt or not c.isspace():
                        self.stmt.append(c)
                i += 1
            if line_frag and frag_func is not None:
                frag_func.body.append((lineno, "".join(line_frag)))
        return self.model


def scan_file(sf) -> FileModel:
    return _Scanner(sf).scan()


def extract_calls(code_line: str):
    """Yield (recv, op, qual, name) call candidates from one body line."""
    line = TEMPLATE_CALL_RE.sub(r"\1(", code_line)
    for m in CALL_RE.finditer(line):
        name = m.group("name")
        if name in KEYWORDS:
            continue
        recv = m.group("recv")
        if recv in KEYWORDS:
            recv = None
        yield recv, m.group("op"), (m.group("qual") or "").rstrip(":"), name
