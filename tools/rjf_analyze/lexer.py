"""Shared comment/string-aware C++ lexer for the rjf_analyze passes.

Every pass in the suite sees source text through this module, so the
classes of false positives/negatives a per-pass regex would reintroduce
(rules firing inside comments or string literals, allow-tags read out of
code instead of comments) are fixed in exactly one place.

Two views of a file:

  * ``code_lines`` — the raw lines with comments and string/char literal
    *contents* blanked out (quote characters kept so "a string was here"
    stays visible to heuristics that care). Rule matchers run on these.
  * ``raw_lines``  — untouched text. Allow-tags are parsed from here,
    because they live in comments by design.

Allow-tag grammar (the escape hatch shared by every pass):

  // fabric-lint: allow(<rule>)          legacy form, fabric pass rules only
  // rjf-analyze: allow(<pass>.<rule>)   any pass/rule in the suite
  // rjf-analyze: allow(realtime.call)   audited call edge: the realtime
                                         pass will not traverse callees on
                                         this line

A tag must name the rule it suppresses; an allow for a different rule on
the same line does not match. Multiple tags per line are honoured.
"""

from __future__ import annotations

import pathlib
import re

# Legacy fabric-lint tags: bare rule ids.
FABRIC_ALLOW_RE = re.compile(r"fabric-lint:\s*allow\(([a-z-]+)\)")
# Suite-wide tags: pass-qualified rule ids (e.g. "layering.undeclared-edge").
ANALYZE_ALLOW_RE = re.compile(r"rjf-analyze:\s*allow\(([a-z0-9_.-]+)\)")


def strip_code(lines):
    """Return code lines: comments and string/char literals blanked, so
    rule regexes only see real code tokens. Tracks /* */ across lines."""
    out = []
    in_block = False
    for raw in lines:
        code = []
        i = 0
        n = len(raw)
        while i < n:
            if in_block:
                j = raw.find("*/", i)
                if j == -1:
                    i = n
                else:
                    in_block = False
                    i = j + 2
                continue
            c = raw[i]
            if c == "/" and i + 1 < n and raw[i + 1] == "/":
                break  # rest of line is a comment
            if c == "/" and i + 1 < n and raw[i + 1] == "*":
                in_block = True
                i += 2
                continue
            if c in "\"'":
                quote = c
                code.append(quote)
                i += 1
                while i < n:
                    if raw[i] == "\\":
                        i += 2
                        continue
                    if raw[i] == quote:
                        i += 1
                        break
                    i += 1
                code.append(quote)
                continue
            code.append(c)
            i += 1
        out.append("".join(code))
    return out


class SourceFile:
    """One lexed file: raw lines, code lines, and per-line allow-tags."""

    def __init__(self, path: pathlib.Path, root: pathlib.Path):
        self.path = path
        self.rel = str(path.relative_to(root))
        text = path.read_text(encoding="utf-8")
        self.raw_lines = text.splitlines()
        self.code_lines = strip_code(self.raw_lines)
        # line number (1-based) -> set of tag strings
        self._allows: dict[int, set[str]] = {}
        for lineno, raw in enumerate(self.raw_lines, start=1):
            tags = set(FABRIC_ALLOW_RE.findall(raw))
            tags.update(ANALYZE_ALLOW_RE.findall(raw))
            if tags:
                self._allows[lineno] = tags

    def allows(self, lineno: int) -> set:
        return self._allows.get(lineno, set())

    def allowed(self, lineno: int, pass_id: str, rule_id: str) -> bool:
        """True when a tag on `lineno` suppresses pass_id.rule_id.

        The qualified form always matches; the bare legacy form matches
        only for the fabric pass (fabric_lint compatibility contract).
        """
        tags = self.allows(lineno)
        if f"{pass_id}.{rule_id}" in tags:
            return True
        return pass_id == "fabric" and rule_id in tags

    def lines(self):
        """Yield (lineno, code, raw) triples, lineno 1-based."""
        return zip(range(1, len(self.raw_lines) + 1),
                   self.code_lines, self.raw_lines)


class FileCache:
    """Lex each file once, however many passes look at it."""

    def __init__(self, root: pathlib.Path):
        self.root = root
        self._cache: dict[pathlib.Path, SourceFile] = {}

    def get(self, path: pathlib.Path) -> SourceFile:
        path = path.resolve()
        sf = self._cache.get(path)
        if sf is None:
            sf = SourceFile(path, self.root)
            self._cache[path] = sf
        return sf
