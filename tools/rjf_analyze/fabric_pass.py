"""Fabric synthesizability + determinism pass (legacy fabric_lint rules).

This is tools/fabric_lint.py's rule set, verbatim in behaviour, hosted on
the suite's shared lexer: the cycle-accurate FPGA model in src/fpga stands
in for RTL, so everything in it must be expressible as fixed-point fabric
logic, and everything in the deterministic subsystems (src/fpga,
src/core/sweep+campaign+scenario, src/fault, src/dsp/simd, the telemetry
transport src/obs/event_ring) must stay bit-reproducible across runs and
thread counts.

Scopes are a property of the directory, not of allow-tags: src/fpga gets
both the fabric rules (float-in-datapath, raw-cast, overflow-multiply)
and the deterministic rules; the other subsystems get only the
deterministic rules. The SIMD DSP kernels are HOST-side vector code — the
soft-Viterbi and FFT kernels are float by design — so exempting them from
float-in-datapath does not loosen the fabric scope one line.

Rule table (DESIGN.md section 11):

  float-in-datapath   float/double types or floating literals in src/fpga.
  raw-cast            static_cast/reinterpret_cast to a sized integer type
                      in src/fpga outside hw_int.h.
  overflow-multiply   a narrowing integer cast applied directly to a `*`
                      expression (the static_cast<uint32_t>(a * b) idiom).
  static-state        thread_local or mutable static data in deterministic
                      subsystems (the PR 3 thread_local cache bug class).
  unordered-iteration std::unordered_{map,set}: iteration order is
                      implementation-defined nondeterminism.
  wall-clock-or-rand  wall clocks or ambient randomness; time and entropy
                      must come in through explicit seeds/parameters.

Escape hatch: `// fabric-lint: allow(<rule>)` on the offending line (the
historical tag, still honoured everywhere) or the suite-wide
`// rjf-analyze: allow(fabric.<rule>)`.
"""

from __future__ import annotations

import pathlib
import re
import tempfile

from base import Pass, PassResult
from lexer import SourceFile

# ---------------------------------------------------------------------------
# Rule matchers (identical to the fabric_lint.py originals)

FLOAT_RE = re.compile(
    r"\b(float|double)\b"
    r"|\b\d+\.\d*(e[+-]?\d+)?f?\b"
    r"|\b\d+e[+-]?\d+f?\b",
    re.IGNORECASE,
)

SIZED_INT = r"(std::)?(u?int(8|16|32|64)_t|__u?int128(_t)?|unsigned\s+__int128)"
RAW_CAST_RE = re.compile(
    r"\b(static_cast|reinterpret_cast)\s*<\s*" + SIZED_INT + r"\s*>"
)
# A narrowing cast whose operand expression contains a multiply at the top
# parenthesis level: static_cast<uint32_t>(a * b).
OVERFLOW_MUL_RE = re.compile(
    r"\bstatic_cast\s*<\s*(std::)?u?int(8|16|32)_t\s*>\s*\([^()]*\*[^()]*\)"
)

UNORDERED_RE = re.compile(r"\bstd::unordered_(map|set|multimap|multiset)\b")

WALLCLOCK_RE = re.compile(
    r"\b(steady_clock|system_clock|high_resolution_clock)\b"
    r"|\bstd::rand\b|\bsrand\s*\(|\brandom_device\b"
)

# `\bstatic\b` does not match inside static_assert/static_cast (underscore
# is a word character), so those need no special-casing.
STATIC_KW_RE = re.compile(r"\bstatic\b\s*(inline\b\s*)?(?P<rest>.*)$")
THREAD_LOCAL_RE = re.compile(r"\bthread_local\b")


def _is_mutable_static(code: str) -> bool:
    """Match static data declarations (namespace-scope or function-local),
    not static member functions or static const/constexpr tables."""
    if THREAD_LOCAL_RE.search(code):
        return True
    m = STATIC_KW_RE.search(code)
    if not m:
        return False
    rest = m.group("rest")
    if re.match(r"(const\b|constexpr\b|consteval\b)", rest):
        return False
    # A '(' before any '=' means a function declaration/definition.
    eq = rest.find("=")
    par = rest.find("(")
    if par != -1 and (eq == -1 or par < eq):
        return False
    return True


class Rule:
    def __init__(self, rid, scope, matcher, message):
        self.rid = rid
        self.scope = scope  # 'fpga' | 'deterministic'
        self.matcher = matcher  # callable(code_line) -> bool
        self.message = message


RULES = [
    Rule(
        "float-in-datapath",
        "fpga",
        lambda code: FLOAT_RE.search(code) is not None,
        "float/double in fabric datapath code (convert at the host boundary,"
        " core/fabric_units.h)",
    ),
    Rule(
        "raw-cast",
        "fpga",
        lambda code: RAW_CAST_RE.search(code) is not None,
        "raw arithmetic cast outside hw_int.h (use hw::UInt/Int"
        " wrap/truncate/sat/narrow)",
    ),
    Rule(
        "overflow-multiply",
        "fpga",
        lambda code: OVERFLOW_MUL_RE.search(code) is not None,
        "narrowing cast wrapped around a multiply: the product is computed"
        " at the unwidened type (UB for signed operands); square/multiply in"
        " the exact widened hw type, then wrap/truncate",
    ),
    Rule(
        "static-state",
        "deterministic",
        _is_mutable_static,
        "thread_local/mutable static state in a deterministic subsystem",
    ),
    Rule(
        "unordered-iteration",
        "deterministic",
        lambda code: UNORDERED_RE.search(code) is not None,
        "unordered container in a deterministic subsystem (iteration order"
        " is implementation-defined)",
    ),
    Rule(
        "wall-clock-or-rand",
        "deterministic",
        lambda code: WALLCLOCK_RE.search(code) is not None,
        "wall clock or ambient randomness in a deterministic subsystem"
        " (inject time/seeds explicitly)",
    ),
]

# Files whose entire purpose is to confine the raw-cast machinery.
CAST_EXEMPT = {"hw_int.h"}


def scoped_files(root: pathlib.Path):
    """Yield (path, scopes) for every file the pass covers."""
    fpga = sorted((root / "src" / "fpga").glob("**/*"))
    fault = sorted((root / "src" / "fault").glob("**/*"))
    sweep = [root / "src" / "core" / "sweep.h", root / "src" / "core" / "sweep.cpp",
             root / "src" / "core" / "campaign.h", root / "src" / "core" / "campaign.cpp",
             root / "src" / "core" / "scenario.h", root / "src" / "core" / "scenario.cpp"]
    # Host-side SIMD kernels: float vector math is their whole job, so only
    # the deterministic scope applies (see the module docstring).
    simd = sorted((root / "src" / "dsp" / "simd").glob("**/*"))
    # Telemetry transport: the SPSC ring must stay free of hidden state and
    # ambient time/entropy or traces stop being byte-reproducible.
    obs = [root / "src" / "obs" / "event_ring.h",
           root / "src" / "obs" / "event_ring.cpp"]
    seen = {}
    for p in fpga:
        if p.suffix in (".h", ".cpp"):
            seen.setdefault(p, set()).update({"fpga", "deterministic"})
    for p in fault + sweep + simd + obs:
        if p.suffix in (".h", ".cpp") and p.exists():
            seen.setdefault(p, set()).add("deterministic")
    return sorted(seen.items())


class FabricPass(Pass):
    pass_id = "fabric"
    title = "fabric synthesizability + determinism (legacy fabric_lint)"

    def rules(self):
        return {r.rid: r.message for r in RULES}

    def _lint_source(self, sf: SourceFile, scopes) -> list:
        """(lineno, rid, message) findings for one lexed file."""
        out = []
        exempt_casts = sf.path.name in CAST_EXEMPT
        for lineno, code, _raw in sf.lines():
            # A narrowing cast of a multiply is also a raw cast; report only
            # the more specific overflow-multiply diagnosis for that line.
            mul_hit = OVERFLOW_MUL_RE.search(code) is not None
            for rule in RULES:
                if rule.scope not in scopes:
                    continue
                if rule.rid in ("raw-cast", "overflow-multiply") and exempt_casts:
                    continue
                if rule.rid == "raw-cast" and mul_hit:
                    continue
                if not rule.matcher(code):
                    continue
                if sf.allowed(lineno, self.pass_id, rule.rid):
                    continue
                out.append((lineno, rule.rid, rule.message))
        return out

    def run(self, ctx):
        result = PassResult(self.pass_id)
        if not (ctx.root / "src" / "fpga").is_dir():
            result.errors.append(f"no src/fpga under {ctx.root}")
            return result
        for path, scopes in scoped_files(ctx.root):
            sf = ctx.files.get(path)
            result.files_scanned += 1
            for lineno, rid, message in self._lint_source(sf, scopes):
                result.add(sf.rel, lineno, rid, message)
        result.stats = {"rules": len(RULES)}
        return result

    # -----------------------------------------------------------------------
    # Self-test: seed exactly one violation per rule, check detection and the
    # allow-tag escape hatch — the original fabric_lint contract, including
    # the simd scope-boundary case.

    SEEDS = {
        "float-in-datapath": ("src/fpga/seed_float.cpp", "double gain = 0.5;\n"),
        "raw-cast": (
            "src/fpga/seed_cast.cpp",
            "std::uint32_t f(long v) { return static_cast<std::uint32_t>(v); }\n",
        ),
        "overflow-multiply": (
            "src/fpga/seed_mul.cpp",
            "std::uint32_t sq(int re) { return static_cast<std::uint32_t>(re * re); }\n",
        ),
        "static-state": (
            "src/fault/seed_static.cpp",
            "int next_id() { static int counter = 0; return ++counter; }\n",
        ),
        "unordered-iteration": (
            "src/core/sweep.h",
            "#include <unordered_map>\nstd::unordered_map<int, int> trials;\n",
        ),
        "wall-clock-or-rand": (
            "src/fault/seed_clock.cpp",
            "auto t0() { return std::chrono::steady_clock::now(); }\n",
        ),
    }

    def _run_tree(self, root: pathlib.Path):
        found = []
        for path, scopes in scoped_files(root):
            sf = SourceFile(path, root)
            for lineno, rid, _msg in self._lint_source(sf, scopes):
                found.append((sf.rel, lineno, rid))
        return found

    def self_test(self) -> int:
        with tempfile.TemporaryDirectory() as td:
            root = pathlib.Path(td).resolve()
            for _rid, (rel, body) in self.SEEDS.items():
                p = root / rel
                p.parent.mkdir(parents=True, exist_ok=True)
                # Appending keeps one file per seed even when two share a path.
                with open(p, "a", encoding="utf-8") as f:
                    f.write(body)
            found = self._run_tree(root)
            got = {(rel, rid) for rel, _, rid in found}
            want = {(seed_rel, rid) for rid, (seed_rel, _) in self.SEEDS.items()}
            if got != want:
                print("fabric pass self-test FAILED")
                print("  expected:", sorted(want))
                print("  got:     ", sorted(got))
                return 1
            per_rule = {}
            for _, _, rid in found:
                per_rule[rid] = per_rule.get(rid, 0) + 1
            if any(c != 1 for c in per_rule.values()) or len(per_rule) != len(RULES):
                print("fabric pass self-test FAILED: expected exactly one"
                      " violation per rule, got", per_rule)
                return 1

            # Tag every seeded line (alternating the legacy and the
            # suite-wide allow spellings) and assert full suppression.
            for index, (rid, (rel, _)) in enumerate(sorted(self.SEEDS.items())):
                p = root / rel
                tag = (f"  // fabric-lint: allow({rid})" if index % 2 == 0
                       else f"  // rjf-analyze: allow(fabric.{rid})")
                tagged = [
                    line + tag if line.strip() else line
                    for line in p.read_text(encoding="utf-8").splitlines()
                ]
                p.write_text("\n".join(tagged) + "\n", encoding="utf-8")
            residue = self._run_tree(root)
            if residue:
                print("fabric pass self-test FAILED: allow-tags did not"
                      " suppress:")
                for rel, lineno, rid in residue:
                    print(f"  {rel}:{lineno}: [{rid}]")
                return 1

        # Scope-boundary case (second tree): src/dsp/simd is
        # deterministic-only, so a float there must NOT fire while a wall
        # clock in the same file must — and the identical float line in
        # src/fpga must still fire.
        with tempfile.TemporaryDirectory() as td:
            root = pathlib.Path(td).resolve()
            simd_rel = "src/dsp/simd/seed_kernel.cpp"
            fpga_rel = "src/fpga/seed_boundary.cpp"
            for rel, body in (
                (simd_rel,
                 "float gain = 0.5f;\n"
                 "auto t0() { return std::chrono::steady_clock::now(); }\n"),
                (fpga_rel, "float gain = 0.5f;\n"),
            ):
                p = root / rel
                p.parent.mkdir(parents=True, exist_ok=True)
                p.write_text(body, encoding="utf-8")
            got = {(rel, rid) for rel, _, rid in self._run_tree(root)}
            want = {(simd_rel, "wall-clock-or-rand"),
                    (fpga_rel, "float-in-datapath")}
            if got != want:
                print("fabric pass self-test FAILED (simd scope boundary)")
                print("  expected:", sorted(want))
                print("  got:     ", sorted(got))
                return 1

        print(f"fabric pass self-test OK: {len(RULES)} rules seeded, caught,"
              " and suppressed via allow-tags; simd scope boundary holds")
        return 0
