// run_campaign: checkpointable detection campaign over a {target rate,
// fault scale, SNR} grid for any registered protocol target (core/
// scenario.h). The shard store at --store makes the run durable: kill it at
// any point (SIGKILL included) and rerunning the same command resumes from
// the last completed shard; the merged CSV is byte-identical to an
// uninterrupted single-process run. --max-shards bounds one invocation for
// batch windows ("run two hours per night") — the overnight recipe is in
// EXPERIMENTS.md.
//
// Usage:
//   run_campaign --store campaign.rjfc --csv out.csv
//     --target wifi_dsss --snrs -4,-2,0,2,4 --rates 1,2,5.5,11
//     --fault-scales 0,1 --trials 100000 [--threads N] [--shard-trials N]
//     [--max-shards N] [--seed S] [--psdu-bytes N] [--quiet]
//   run_campaign --list-targets
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <string>
#include <vector>

#include "core/campaign.h"
#include "core/scenario.h"
#include "dsp/rng.h"
#include "fault/fault_experiment.h"
#include "fault/fault_plan.h"

namespace {

using rjf::core::CampaignGrid;
using rjf::core::CampaignReport;
using rjf::core::CampaignSpec;
using rjf::core::ProtocolTarget;

std::vector<double> parse_doubles(const char* arg) {
  std::vector<double> out;
  const char* p = arg;
  while (*p != '\0') {
    char* end = nullptr;
    out.push_back(std::strtod(p, &end));
    if (end == p) {
      std::fprintf(stderr, "run_campaign: bad number list '%s'\n", arg);
      std::exit(2);
    }
    p = (*end == ',') ? end + 1 : end;
  }
  return out;
}

std::vector<std::size_t> parse_rates(const char* arg,
                                     const ProtocolTarget& target) {
  std::vector<std::size_t> out;
  for (const double mbps : parse_doubles(arg)) {
    bool found = false;
    for (std::size_t i = 0; i < target.rates.size(); ++i) {
      if (target.rates[i].mbps == mbps) {
        out.push_back(i);
        found = true;
        break;
      }
    }
    if (!found) {
      std::fprintf(stderr, "run_campaign: target '%s' has no %g Mbps rate\n",
                   target.name.c_str(), mbps);
      std::exit(2);
    }
  }
  return out;
}

int list_targets() {
  for (const ProtocolTarget& t : rjf::core::protocol_targets()) {
    std::string rates;
    for (const rjf::core::TargetRate& r : t.rates) {
      char buf[32];
      std::snprintf(buf, sizeof buf, "%s%g", rates.empty() ? "" : ",", r.mbps);
      rates += buf;
    }
    std::printf("%-12s rates %s Mbps  %s\n", t.name.c_str(), rates.c_str(),
                t.description.c_str());
  }
  return 0;
}

int usage() {
  std::fprintf(
      stderr,
      "usage: run_campaign --store FILE [--csv FILE] [--target NAME]\n"
      "    [--snrs a,b,...] [--rates mbps,...] [--fault-scales s,...]\n"
      "    [--trials N] [--threads N] [--shard-trials N] [--max-shards N]\n"
      "    [--seed S] [--psdu-bytes N] [--quiet]\n"
      "   or: run_campaign --list-targets\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string store_path;
  std::string csv_path;
  CampaignSpec spec;
  spec.grid.snrs_db = {-4.0, -2.0, 0.0, 2.0, 4.0};
  spec.grid.trials_per_point = 10000;
  bool quiet = false;
  bool fault_axis = false;
  const char* rates_arg = nullptr;
  bool rates_given = false;

  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "run_campaign: %s needs a value\n", a);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(a, "--store") == 0) {
      store_path = next();
    } else if (std::strcmp(a, "--csv") == 0) {
      csv_path = next();
    } else if (std::strcmp(a, "--target") == 0) {
      spec.target = next();
    } else if (std::strcmp(a, "--list-targets") == 0) {
      return list_targets();
    } else if (std::strcmp(a, "--snrs") == 0) {
      spec.grid.snrs_db = parse_doubles(next());
    } else if (std::strcmp(a, "--rates") == 0) {
      rates_arg = next();
      rates_given = true;
    } else if (std::strcmp(a, "--fault-scales") == 0) {
      spec.grid.fault_scales = parse_doubles(next());
      fault_axis = true;
    } else if (std::strcmp(a, "--trials") == 0) {
      spec.grid.trials_per_point =
          static_cast<std::size_t>(std::strtoull(next(), nullptr, 10));
    } else if (std::strcmp(a, "--threads") == 0) {
      spec.threads = static_cast<unsigned>(std::strtoul(next(), nullptr, 10));
    } else if (std::strcmp(a, "--shard-trials") == 0) {
      spec.shard_trials =
          static_cast<std::size_t>(std::strtoull(next(), nullptr, 10));
    } else if (std::strcmp(a, "--max-shards") == 0) {
      spec.max_shards_this_run =
          static_cast<std::size_t>(std::strtoull(next(), nullptr, 10));
    } else if (std::strcmp(a, "--seed") == 0) {
      spec.seed = std::strtoull(next(), nullptr, 10);
    } else if (std::strcmp(a, "--psdu-bytes") == 0) {
      spec.psdu_bytes =
          static_cast<std::size_t>(std::strtoull(next(), nullptr, 10));
    } else if (std::strcmp(a, "--quiet") == 0) {
      quiet = true;
    } else {
      return usage();
    }
  }
  const ProtocolTarget* target = rjf::core::find_target(spec.target);
  if (target == nullptr) {
    std::fprintf(stderr,
                 "run_campaign: unknown target '%s' (try --list-targets)\n",
                 spec.target.c_str());
    return 2;
  }
  spec.grid.rate_indices = rates_given ? parse_rates(rates_arg, *target)
                                       : std::vector<std::size_t>{
                                             target->default_rate_index};
  if (store_path.empty() || spec.grid.num_points() == 0 ||
      spec.grid.trials_per_point == 0)
    return usage();

  // Paper Fig. 7 personality, retargeted: the target's own preamble
  // correlator at the calibrated false-alarm threshold, 100 us jam bursts.
  spec.jammer = rjf::core::target_reactive_preset(*target, 100e-6);
  spec.tap = rjf::core::DetectorTap::kXcorr;

  if (fault_axis) {
    // Scale-1.0 rates match bench_fault_robustness's degradation curve; the
    // grid's fault_scales multiply them per point.
    rjf::fault::FaultPlanConfig fault_base;
    fault_base.seed = rjf::dsp::derive_seed(spec.seed, 0x0fa7u);
    fault_base.clip_rate = 2e-4;
    fault_base.dc_rate = 2e-4;
    fault_base.drop_rate = 2e-4;
    fault_base.overflow_rate = 1e-4;
    spec.make_trial_hook =
        rjf::fault::campaign_fault_hook_factory(spec.grid, fault_base);
  }

  if (!quiet) {
    spec.progress_every_shards = 25;
    spec.progress = [](const rjf::core::SweepProgress& p) {
      std::fprintf(stderr,
                   "[campaign] shards %zu/%zu  trials %llu  %.0f trials/s  "
                   "eta %.0fs\n",
                   p.shards_done, p.shards_total,
                   static_cast<unsigned long long>(p.trials_done),
                   p.trials_per_second, p.eta_seconds);
    };
  }

  try {
    const CampaignReport report = rjf::core::run_campaign(spec, store_path);
    const std::string csv = report.to_csv();
    if (!csv_path.empty()) {
      std::FILE* f = std::fopen(csv_path.c_str(), "wb");
      if (f == nullptr ||
          std::fwrite(csv.data(), 1, csv.size(), f) != csv.size()) {
        std::fprintf(stderr, "run_campaign: cannot write '%s'\n",
                     csv_path.c_str());
        if (f != nullptr) std::fclose(f);
        return 1;
      }
      std::fclose(f);
    } else {
      std::fwrite(csv.data(), 1, csv.size(), stdout);
    }
    if (!quiet) {
      std::fprintf(stderr,
                   "[campaign] %s: %zu/%zu shards durable (%zu run now, "
                   "%zu resumed), %llu trials this run, %zu/%zu plans "
                   "built, %.1fs\n",
                   report.complete ? "complete" : "PARTIAL",
                   report.shards_already_complete + report.shards_run,
                   report.shards_total, report.shards_run,
                   report.shards_already_complete,
                   static_cast<unsigned long long>(report.trials_run),
                   report.plans_built, report.points.size(),
                   report.wall_seconds);
    }
    // Partial runs (a --max-shards window closed early) exit 3 so batch
    // scripts know to rerun; the store already holds everything durable.
    return report.complete ? 0 : 3;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "run_campaign: %s\n", e.what());
    return 1;
  }
}
