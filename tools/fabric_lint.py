#!/usr/bin/env python3
"""Compatibility shim: fabric_lint is now the `fabric` pass of rjf_analyze.

The six synthesizability/determinism rules (float-in-datapath, raw-cast,
overflow-multiply, static-state, unordered-iteration, wall-clock-or-rand),
their scopes, and the `// fabric-lint: allow(<rule>)` escapes live in
tools/rjf_analyze/fabric_pass.py, sharing the suite's comment/string-aware
lexer. This wrapper preserves the historical CLI:

  python3 tools/fabric_lint.py --root .      # == rjf_analyze --pass fabric
  python3 tools/fabric_lint.py --self-test
  python3 tools/fabric_lint.py --list-rules

Exit codes unchanged: 0 clean, 1 findings, 2 configuration error.
"""

import pathlib
import sys

_PKG = str(pathlib.Path(__file__).resolve().parent / "rjf_analyze")
if _PKG not in sys.path:
    sys.path.insert(0, _PKG)

from cli import main  # noqa: E402

if __name__ == "__main__":
    sys.exit(main(["--pass", "fabric", *sys.argv[1:]]))
