#!/usr/bin/env python3
"""Fabric synthesizability linter.

The cycle-accurate FPGA model in src/fpga stands in for RTL: everything in
it must be expressible as fixed-point fabric logic, and everything in the
deterministic subsystems (src/fpga, src/core/sweep, src/fault,
src/dsp/simd) must stay bit-reproducible across runs and thread counts.
The C++ type system cannot enforce either property, so this linter does,
as a CI gate.

Scopes are assigned per directory: src/fpga gets both the fabric rules
(float-in-datapath, raw-cast, overflow-multiply) and the deterministic
rules; src/fault, src/core/sweep.{h,cpp}, src/core/campaign.{h,cpp},
src/core/scenario.{h,cpp}, src/dsp/simd and the telemetry transport
src/obs/event_ring.{h,cpp} get only the deterministic rules.
The SIMD DSP kernels are HOST-side vector code — the soft-Viterbi and FFT
kernels are float by design — so exempting them from float-in-datapath is
a property of the directory, not of allow-tags, and does not loosen the
fabric scope one line.  The event ring sits on the producers' hot path and
its record stream feeds byte-reproducible trace exports, so hidden state,
unordered iteration or ambient time/entropy in it would leak straight into
the determinism guarantees.

Rules (see DESIGN.md section 11 for the full table):

  float-in-datapath   float/double types or floating literals in src/fpga.
                      The fabric has no FPU; continuous-domain conversions
                      belong on the host side of the register bus
                      (core/fabric_units.h).
  raw-cast            static_cast/reinterpret_cast to a sized integer type
                      in src/fpga outside hw_int.h. Width changes must be
                      spelled as wrap/truncate/sat/narrow on hw::UInt/Int so
                      every lossy conversion is a declared RTL operation.
  overflow-multiply   a narrowing integer cast applied directly to a `*`
                      expression (the `static_cast<uint32_t>(a * b)` idiom):
                      the multiply runs at the unwidened operand type and
                      can invoke signed-overflow UB before the cast.
  static-state        thread_local or mutable static data in deterministic
                      subsystems; hidden cross-call state breaks trial
                      independence (see PR 3's thread_local cache bug).
  unordered-iteration std::unordered_{map,set} in deterministic subsystems:
                      iteration order is implementation-defined, which leaks
                      nondeterminism into anything order-sensitive.
  wall-clock-or-rand  wall clocks (steady/system/high_resolution ::now) or
                      ambient randomness (std::rand, random_device) in
                      deterministic subsystems; time and entropy must come
                      in through explicit seeds/parameters.

Escape hatch: append `// fabric-lint: allow(<rule>)` to the offending line,
ideally with a justification after the tag. The tag must name the rule it
suppresses; an allow for a different rule does not match.

Exit codes: 0 clean, 1 violations found, 2 usage/internal error.

`--self-test` seeds one violation per rule in a temp tree, asserts the lint
reports exactly those six, then asserts an allow-tag suppresses each. CI
runs the self-test first so a silently broken rule cannot pass the gate.
"""

from __future__ import annotations

import argparse
import pathlib
import re
import sys
import tempfile

# ---------------------------------------------------------------------------
# Rule table


class Rule:
    def __init__(self, rid, scope, matcher, message):
        self.rid = rid
        self.scope = scope  # 'fpga' | 'deterministic'
        self.matcher = matcher  # callable(code_line) -> bool
        self.message = message


FLOAT_RE = re.compile(
    r"\b(float|double)\b"
    r"|\b\d+\.\d*(e[+-]?\d+)?f?\b"
    r"|\b\d+e[+-]?\d+f?\b",
    re.IGNORECASE,
)

SIZED_INT = r"(std::)?(u?int(8|16|32|64)_t|__u?int128(_t)?|unsigned\s+__int128)"
RAW_CAST_RE = re.compile(
    r"\b(static_cast|reinterpret_cast)\s*<\s*" + SIZED_INT + r"\s*>"
)
# A narrowing cast whose operand expression contains a multiply at the top
# parenthesis level: static_cast<uint32_t>(a * b).
OVERFLOW_MUL_RE = re.compile(
    r"\bstatic_cast\s*<\s*(std::)?u?int(8|16|32)_t\s*>\s*\([^()]*\*[^()]*\)"
)

UNORDERED_RE = re.compile(r"\bstd::unordered_(map|set|multimap|multiset)\b")

WALLCLOCK_RE = re.compile(
    r"\b(steady_clock|system_clock|high_resolution_clock)\b"
    r"|\bstd::rand\b|\bsrand\s*\(|\brandom_device\b"
)

# `\bstatic\b` does not match inside static_assert/static_cast (underscore
# is a word character), so those need no special-casing.
STATIC_KW_RE = re.compile(r"\bstatic\b\s*(inline\b\s*)?(?P<rest>.*)$")
THREAD_LOCAL_RE = re.compile(r"\bthread_local\b")


def _is_mutable_static(code: str) -> bool:
    """Match static data declarations (namespace-scope or function-local),
    not static member functions or static const/constexpr tables."""
    if THREAD_LOCAL_RE.search(code):
        return True
    m = STATIC_KW_RE.search(code)
    if not m:
        return False
    rest = m.group("rest")
    if re.match(r"(const\b|constexpr\b|consteval\b)", rest):
        return False
    # A '(' before any '=' means a function declaration/definition.
    eq = rest.find("=")
    par = rest.find("(")
    if par != -1 and (eq == -1 or par < eq):
        return False
    return True


RULES = [
    Rule(
        "float-in-datapath",
        "fpga",
        lambda code: FLOAT_RE.search(code) is not None,
        "float/double in fabric datapath code (convert at the host boundary,"
        " core/fabric_units.h)",
    ),
    Rule(
        "raw-cast",
        "fpga",
        lambda code: RAW_CAST_RE.search(code) is not None,
        "raw arithmetic cast outside hw_int.h (use hw::UInt/Int"
        " wrap/truncate/sat/narrow)",
    ),
    Rule(
        "overflow-multiply",
        "fpga",
        lambda code: OVERFLOW_MUL_RE.search(code) is not None,
        "narrowing cast wrapped around a multiply: the product is computed"
        " at the unwidened type (UB for signed operands); square/multiply in"
        " the exact widened hw type, then wrap/truncate",
    ),
    Rule(
        "static-state",
        "deterministic",
        _is_mutable_static,
        "thread_local/mutable static state in a deterministic subsystem",
    ),
    Rule(
        "unordered-iteration",
        "deterministic",
        lambda code: UNORDERED_RE.search(code) is not None,
        "unordered container in a deterministic subsystem (iteration order"
        " is implementation-defined)",
    ),
    Rule(
        "wall-clock-or-rand",
        "deterministic",
        lambda code: WALLCLOCK_RE.search(code) is not None,
        "wall clock or ambient randomness in a deterministic subsystem"
        " (inject time/seeds explicitly)",
    ),
]

ALLOW_RE = re.compile(r"fabric-lint:\s*allow\(([a-z-]+)\)")

# Files whose entire purpose is to confine the raw-cast machinery.
CAST_EXEMPT = {"hw_int.h"}


# ---------------------------------------------------------------------------
# Scope resolution


def scoped_files(root: pathlib.Path):
    """Yield (path, scopes) for every file the linter covers."""
    fpga = sorted((root / "src" / "fpga").glob("**/*"))
    fault = sorted((root / "src" / "fault").glob("**/*"))
    sweep = [root / "src" / "core" / "sweep.h", root / "src" / "core" / "sweep.cpp",
             root / "src" / "core" / "campaign.h", root / "src" / "core" / "campaign.cpp",
             root / "src" / "core" / "scenario.h", root / "src" / "core" / "scenario.cpp"]
    # Host-side SIMD kernels: float vector math is their whole job, so only
    # the deterministic scope applies (see the module docstring).
    simd = sorted((root / "src" / "dsp" / "simd").glob("**/*"))
    # Telemetry transport: the SPSC ring must stay free of hidden state and
    # ambient time/entropy or traces stop being byte-reproducible.
    obs = [root / "src" / "obs" / "event_ring.h",
           root / "src" / "obs" / "event_ring.cpp"]
    seen = {}
    for p in fpga:
        if p.suffix in (".h", ".cpp"):
            seen.setdefault(p, set()).update({"fpga", "deterministic"})
    for p in fault + sweep + simd + obs:
        if p.suffix in (".h", ".cpp") and p.exists():
            seen.setdefault(p, set()).add("deterministic")
    return sorted(seen.items())


# ---------------------------------------------------------------------------
# Comment/string stripping (line oriented; tracks /* */ across lines)


def strip_code(lines):
    """Return (code_lines, raw_lines): code with comments and string/char
    literals blanked, so rule regexes only see real code tokens."""
    out = []
    in_block = False
    for raw in lines:
        code = []
        i = 0
        n = len(raw)
        while i < n:
            if in_block:
                j = raw.find("*/", i)
                if j == -1:
                    i = n
                else:
                    in_block = False
                    i = j + 2
                continue
            c = raw[i]
            if c == "/" and i + 1 < n and raw[i + 1] == "/":
                break  # rest of line is a comment
            if c == "/" and i + 1 < n and raw[i + 1] == "*":
                in_block = True
                i += 2
                continue
            if c in "\"'":
                quote = c
                code.append(quote)
                i += 1
                while i < n:
                    if raw[i] == "\\":
                        i += 2
                        continue
                    if raw[i] == quote:
                        i += 1
                        break
                    i += 1
                code.append(quote)
                continue
            code.append(c)
            i += 1
        out.append("".join(code))
    return out


# ---------------------------------------------------------------------------
# Lint driver


def lint_file(path: pathlib.Path, scopes, root: pathlib.Path):
    raw_lines = path.read_text(encoding="utf-8").splitlines()
    code_lines = strip_code(raw_lines)
    rel = path.relative_to(root)
    violations = []
    for lineno, (code, raw) in enumerate(zip(code_lines, raw_lines), start=1):
        allows = set(ALLOW_RE.findall(raw))
        # A narrowing cast of a multiply is also a raw cast; report only the
        # more specific overflow-multiply diagnosis for that line.
        mul_hit = OVERFLOW_MUL_RE.search(code) is not None
        for rule in RULES:
            if rule.scope not in scopes:
                continue
            if rule.rid in ("raw-cast", "overflow-multiply") and path.name in CAST_EXEMPT:
                continue
            if rule.rid == "raw-cast" and mul_hit:
                continue
            if not rule.matcher(code):
                continue
            if rule.rid in allows:
                continue
            violations.append((rel, lineno, rule.rid, rule.message))
    return violations


def run_lint(root: pathlib.Path) -> list:
    violations = []
    for path, scopes in scoped_files(root):
        violations.extend(lint_file(path, scopes, root))
    return violations


# ---------------------------------------------------------------------------
# Self-test: seed exactly one violation per rule, check detection and the
# allow-tag escape hatch.

SEEDS = {
    "float-in-datapath": ("src/fpga/seed_float.cpp", "double gain = 0.5;\n"),
    "raw-cast": (
        "src/fpga/seed_cast.cpp",
        "std::uint32_t f(long v) { return static_cast<std::uint32_t>(v); }\n",
    ),
    "overflow-multiply": (
        "src/fpga/seed_mul.cpp",
        "std::uint32_t sq(int re) { return static_cast<std::uint32_t>(re * re); }\n",
    ),
    "static-state": (
        "src/fault/seed_static.cpp",
        "int next_id() { static int counter = 0; return ++counter; }\n",
    ),
    "unordered-iteration": (
        "src/core/sweep.h",
        "#include <unordered_map>\nstd::unordered_map<int, int> trials;\n",
    ),
    "wall-clock-or-rand": (
        "src/fault/seed_clock.cpp",
        "auto t0() { return std::chrono::steady_clock::now(); }\n",
    ),
}


def self_test() -> int:
    with tempfile.TemporaryDirectory() as td:
        root = pathlib.Path(td)
        for rid, (rel, body) in SEEDS.items():
            p = root / rel
            p.parent.mkdir(parents=True, exist_ok=True)
            # Appending keeps one file per seed even when two share a path.
            with open(p, "a", encoding="utf-8") as f:
                f.write(body)
        found = run_lint(root)
        got = {(str(rel), rid) for rel, _, rid, _ in found}
        want = {(seed_rel, rid) for rid, (seed_rel, _) in SEEDS.items()}
        # The unordered-iteration seed's include line is comment-free code;
        # only the declaration line should fire, and only for its rule.
        if got != want:
            print("fabric_lint self-test FAILED")
            print("  expected:", sorted(want))
            print("  got:     ", sorted(got))
            return 1
        per_rule = {}
        for _, _, rid, _ in found:
            per_rule[rid] = per_rule.get(rid, 0) + 1
        if any(count != 1 for count in per_rule.values()) or len(per_rule) != len(RULES):
            print("fabric_lint self-test FAILED: expected exactly one violation per rule,",
                  "got", per_rule)
            return 1

        # Now tag every seeded line and assert full suppression.
        for rid, (rel, _) in SEEDS.items():
            p = root / rel
            tagged = [
                line + f"  // fabric-lint: allow({rid})" if line.strip() else line
                for line in p.read_text(encoding="utf-8").splitlines()
            ]
            p.write_text("\n".join(tagged) + "\n", encoding="utf-8")
        residue = run_lint(root)
        if residue:
            print("fabric_lint self-test FAILED: allow-tags did not suppress:")
            for rel, lineno, rid, _ in residue:
                print(f"  {rel}:{lineno}: [{rid}]")
            return 1

    # Scope-boundary case (second tree): src/dsp/simd is deterministic-only,
    # so a float there must NOT fire while a wall clock in the same file
    # must — and the identical float line in src/fpga must still fire.
    with tempfile.TemporaryDirectory() as td:
        root = pathlib.Path(td)
        simd_rel = "src/dsp/simd/seed_kernel.cpp"
        fpga_rel = "src/fpga/seed_boundary.cpp"
        for rel, body in (
            (simd_rel,
             "float gain = 0.5f;\n"
             "auto t0() { return std::chrono::steady_clock::now(); }\n"),
            (fpga_rel, "float gain = 0.5f;\n"),
        ):
            p = root / rel
            p.parent.mkdir(parents=True, exist_ok=True)
            p.write_text(body, encoding="utf-8")
        got = {(str(rel), rid) for rel, _, rid, _ in run_lint(root)}
        want = {(simd_rel, "wall-clock-or-rand"),
                (fpga_rel, "float-in-datapath")}
        if got != want:
            print("fabric_lint self-test FAILED (simd scope boundary)")
            print("  expected:", sorted(want))
            print("  got:     ", sorted(got))
            return 1

    print(f"fabric_lint self-test OK: {len(RULES)} rules seeded, caught, and"
          " suppressed via allow-tags; simd scope boundary holds")
    return 0


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--root", default=".", help="repository root (default: cwd)")
    ap.add_argument("--self-test", action="store_true",
                    help="seed one violation per rule and verify detection")
    ap.add_argument("--list-rules", action="store_true")
    args = ap.parse_args()

    if args.list_rules:
        for rule in RULES:
            print(f"{rule.rid:20s} [{rule.scope}] {rule.message}")
        return 0
    if args.self_test:
        return self_test()

    root = pathlib.Path(args.root).resolve()
    if not (root / "src" / "fpga").is_dir():
        print(f"fabric_lint: no src/fpga under {root}", file=sys.stderr)
        return 2
    violations = run_lint(root)
    for rel, lineno, rid, message in violations:
        print(f"{rel}:{lineno}: [{rid}] {message}")
    if violations:
        print(f"fabric_lint: {len(violations)} violation(s); append"
              " '// fabric-lint: allow(<rule>)' with a justification only"
              " where the finding is a modelling-report exception")
        return 1
    files = len(scoped_files(root))
    print(f"fabric_lint: clean ({files} files, {len(RULES)} rules)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
