#!/usr/bin/env python3
"""Fail CI when a benchmark rate drops too far below the committed baseline.

Compares one or more rate keys between the committed BENCH_fabric.json and a
freshly measured run. A key regresses when fresh < (1 - max_drop) * baseline.
Rates above baseline never fail (faster is fine; shared-runner noise mostly
errs slow).

Absolute floors gate keys that carry a hard invariant rather than a relative
rate — e.g. BENCH_sweep.json's sweep_deterministic flag must stay 1 and the
parallel speedup must not collapse. Absolute ceilings (--max-value) gate
counters that must stay at or below a bound — e.g. BENCH_fault.json's
fault_zero_fault_mismatch must stay 0 (the zero-fault inertness contract).
A --min-value/--max-value key missing from the fresh run fails (the
invariant was not measured at all).

Usage:
  tools/check_bench_regression.py --baseline BENCH_fabric.json \
      --fresh BENCH_fabric.ci.json --key BM_DspCoreRunBlock_items_per_s \
      [--key ...] [--max-drop 0.10]
  tools/check_bench_regression.py --fresh BENCH_sweep.ci.json \
      --min-value sweep_deterministic=1 --min-value sweep_speedup=0.9
  tools/check_bench_regression.py --fresh BENCH_fault.ci.json \
      --min-value fault_deterministic=1 --max-value fault_zero_fault_mismatch=0
"""
import argparse
import json
import sys


def parse_bound(spec: str):
    key, sep, bound = spec.partition("=")
    if not sep or not key:
        raise argparse.ArgumentTypeError(
            f"expected KEY=BOUND, got {spec!r}")
    try:
        return key, float(bound)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(
            f"bound must be a number, got {bound!r}") from exc


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline")
    parser.add_argument("--fresh", required=True)
    parser.add_argument("--key", action="append", default=[])
    parser.add_argument("--max-drop", type=float, default=0.10)
    parser.add_argument("--min-value", action="append", default=[],
                        type=parse_bound, metavar="KEY=FLOOR",
                        help="fail unless fresh[KEY] >= FLOOR")
    parser.add_argument("--max-value", action="append", default=[],
                        type=parse_bound, metavar="KEY=CEILING",
                        help="fail unless fresh[KEY] <= CEILING")
    args = parser.parse_args()

    if args.key and not args.baseline:
        parser.error("--key requires --baseline")
    if not args.key and not args.min_value and not args.max_value:
        parser.error(
            "nothing to check: pass --key, --min-value and/or --max-value")

    baseline = {}
    if args.baseline:
        with open(args.baseline) as f:
            baseline = json.load(f)
    with open(args.fresh) as f:
        fresh = json.load(f)

    failed = False
    for key in args.key:
        if key not in baseline:
            print(f"[skip] {key}: not in baseline (new benchmark?)")
            continue
        if key not in fresh:
            print(f"[FAIL] {key}: missing from fresh run")
            failed = True
            continue
        base, now = float(baseline[key]), float(fresh[key])
        if base <= 0:
            print(f"[skip] {key}: baseline rate is {base}")
            continue
        ratio = now / base
        floor = 1.0 - args.max_drop
        status = "FAIL" if ratio < floor else "ok"
        print(f"[{status}] {key}: baseline {base:.4g}, fresh {now:.4g} "
              f"({ratio * 100.0:.1f}% of baseline, floor {floor * 100.0:.0f}%)")
        failed = failed or ratio < floor

    for key, floor in args.min_value:
        if key not in fresh:
            print(f"[FAIL] {key}: missing from fresh run (floor {floor:g})")
            failed = True
            continue
        now = float(fresh[key])
        status = "FAIL" if now < floor else "ok"
        print(f"[{status}] {key}: fresh {now:.4g}, floor {floor:g}")
        failed = failed or now < floor

    for key, ceiling in args.max_value:
        if key not in fresh:
            print(f"[FAIL] {key}: missing from fresh run (ceiling {ceiling:g})")
            failed = True
            continue
        now = float(fresh[key])
        status = "FAIL" if now > ceiling else "ok"
        print(f"[{status}] {key}: fresh {now:.4g}, ceiling {ceiling:g}")
        failed = failed or now > ceiling

    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
