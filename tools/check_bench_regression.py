#!/usr/bin/env python3
"""Fail CI when a benchmark rate drops too far below the committed baseline.

Compares one or more rate keys between the committed BENCH_fabric.json and a
freshly measured run. A key regresses when fresh < (1 - max_drop) * baseline.
Rates above baseline never fail (faster is fine; shared-runner noise mostly
errs slow).

Usage:
  tools/check_bench_regression.py --baseline BENCH_fabric.json \
      --fresh BENCH_fabric.ci.json --key BM_DspCoreRunBlock_items_per_s \
      [--key ...] [--max-drop 0.10]
"""
import argparse
import json
import sys


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", required=True)
    parser.add_argument("--fresh", required=True)
    parser.add_argument("--key", action="append", required=True)
    parser.add_argument("--max-drop", type=float, default=0.10)
    args = parser.parse_args()

    with open(args.baseline) as f:
        baseline = json.load(f)
    with open(args.fresh) as f:
        fresh = json.load(f)

    failed = False
    for key in args.key:
        if key not in baseline:
            print(f"[skip] {key}: not in baseline (new benchmark?)")
            continue
        if key not in fresh:
            print(f"[FAIL] {key}: missing from fresh run")
            failed = True
            continue
        base, now = float(baseline[key]), float(fresh[key])
        if base <= 0:
            print(f"[skip] {key}: baseline rate is {base}")
            continue
        ratio = now / base
        floor = 1.0 - args.max_drop
        status = "FAIL" if ratio < floor else "ok"
        print(f"[{status}] {key}: baseline {base:.4g}, fresh {now:.4g} "
              f"({ratio * 100.0:.1f}% of baseline, floor {floor * 100.0:.0f}%)")
        failed = failed or ratio < floor

    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
